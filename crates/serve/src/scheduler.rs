//! The layer-job scheduler: multiplex many `ProposalSearch` instances over
//! **one** shared [`EvalPool`].
//!
//! Where `mm_mapper::run_pipelined` drives a single searcher against a pool,
//! this scheduler drives a whole queue of independent layer searches at
//! once: up to `max_active` jobs keep proposals in flight simultaneously,
//! every batch is tagged with the pool ids of its members, and completions
//! are routed back to the owning job in proposal order. Pool workers never
//! idle while any job still has budget, and pool threads are spawned once
//! for the service's lifetime instead of once per layer.
//!
//! # Determinism
//!
//! Each job owns an RNG stream seeded from its spec alone, proposals are
//! reported back in proposal order per job, and best-mapping ties resolve
//! first-found. A searcher's proposal sequence must not depend on how
//! `propose` calls are batched (the same contract `run_pipelined` relies
//! on), so a job's outcome is independent of worker count, concurrency
//! level, and completion timing — only the spec (seed, budget, space,
//! evaluator, sync policy) matters.
//!
//! # Job-local sync
//!
//! A [`SyncPolicy`] on the spec is applied *within* each job: every
//! [`JOB_SYNC_INTERVAL`] completed evaluations the job's own best-so-far
//! is offered back to its searcher (`Anchor`/`Annealed` pull a drifting
//! trajectory back onto it, `Restart` warm-restarts a stalled job from
//! it). Keeping the incumbent job-local preserves both the determinism
//! guarantee above and the disjointness of sharded layer jobs.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use mm_mapper::{pipeline_depth, CostEvaluator, EvalPool, Evaluation, OptMetric};
use mm_mapspace::{MapSpaceView, Mapping};
use mm_search::{ConvergenceTrace, ProposalSearch, SyncPolicy, SyncState};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Completed evaluations between job-local sync points (matches the
/// mapper's default `sync_interval`).
pub(crate) const JOB_SYNC_INTERVAL: u64 = 64;

fn tele_jobs_started() -> &'static Arc<mm_telemetry::Counter> {
    static C: OnceLock<Arc<mm_telemetry::Counter>> = OnceLock::new();
    C.get_or_init(|| mm_telemetry::counter("serve.scheduler.jobs_started"))
}

fn tele_jobs_finished() -> &'static Arc<mm_telemetry::Counter> {
    static C: OnceLock<Arc<mm_telemetry::Counter>> = OnceLock::new();
    C.get_or_init(|| mm_telemetry::counter("serve.scheduler.jobs_finished"))
}

fn tele_sync_points() -> &'static Arc<mm_telemetry::Counter> {
    static C: OnceLock<Arc<mm_telemetry::Counter>> = OnceLock::new();
    C.get_or_init(|| mm_telemetry::counter("serve.scheduler.sync_actions"))
}

/// One layer search to run: everything the scheduler needs, self-contained.
pub(crate) struct JobSpec {
    /// Caller-assigned index; outcomes are returned in this order.
    pub index: usize,
    /// The map-space view searched (the full space or one shard of it).
    pub space: Box<dyn MapSpaceView>,
    /// Scores this job's proposals (routed per batch on the shared pool).
    pub evaluator: Arc<dyn CostEvaluator>,
    /// The search method instance.
    pub search: Box<dyn ProposalSearch>,
    /// Seed of this job's private RNG stream.
    pub seed: u64,
    /// Evaluations to spend.
    pub budget: u64,
    /// Job-local global-best sync policy (see the module docs).
    pub sync: SyncPolicy,
    /// Shard-aware horizon hint: begin the searcher with the view-scaled
    /// horizon (`MapSpaceView::horizon_hint`) instead of the raw budget, so
    /// schedule-based searchers confined to a shard stop tuning their
    /// schedules as if they owned the full space.
    pub shard_horizon: bool,
}

/// What one layer search produced.
#[derive(Debug, Clone)]
pub(crate) struct JobOutcome {
    pub searcher: String,
    pub metric_names: Vec<OptMetric>,
    pub best: Option<(Mapping, Evaluation)>,
    pub evaluations: u64,
    pub wall_time_s: f64,
    pub exhausted: bool,
    /// Best-so-far convergence indexed by this job's completed-eval count
    /// (recorded when telemetry is enabled; completions are reported in
    /// proposal order, so the curve is pool-shape independent).
    pub convergence: Option<ConvergenceTrace>,
}

/// A job currently multiplexed on the pool.
struct ActiveJob {
    index: usize,
    space: Box<dyn MapSpaceView>,
    evaluator: Arc<dyn CostEvaluator>,
    search: Box<dyn ProposalSearch>,
    rng: StdRng,
    budget: u64,
    submitted: u64,
    completed: u64,
    /// Proposals in flight, in proposal order (front = oldest).
    pending: VecDeque<(u64, Mapping)>,
    /// Results that arrived out of order, keyed by pool id.
    arrived: BTreeMap<u64, Evaluation>,
    best: Option<(Mapping, Evaluation)>,
    started: Instant,
    exhausted: bool,
    sync: SyncPolicy,
    /// Stall bookkeeping (consecutive non-improving sync points) consumed
    /// by [`SyncPolicy::decide`].
    sync_state: SyncState,
    /// Improvement-only convergence recorder (telemetry enabled).
    convergence: Option<ConvergenceTrace>,
    /// This job's span track (`serve.job{index}`), spans level only.
    track: Option<Arc<mm_telemetry::Track>>,
    /// The job-lifecycle span, held open from start to finish.
    job_span: Option<mm_telemetry::SpanGuard>,
}

impl ActiveJob {
    fn start(mut spec: JobSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let horizon = if spec.shard_horizon {
            spec.space.horizon_hint(spec.budget)
        } else {
            spec.budget
        };
        spec.search.begin(&*spec.space, Some(horizon), &mut rng);
        tele_jobs_started().bump(1);
        mm_telemetry::event("serve.job.start", || {
            format!("index={} budget={}", spec.index, spec.budget)
        });
        let track = mm_telemetry::span_enabled()
            .then(|| mm_telemetry::track(&format!("serve.job{}", spec.index)));
        let job_span = track.as_ref().and_then(|t| t.span("job.run"));
        ActiveJob {
            index: spec.index,
            space: spec.space,
            evaluator: spec.evaluator,
            search: spec.search,
            rng,
            budget: spec.budget,
            submitted: 0,
            completed: 0,
            pending: VecDeque::new(),
            arrived: BTreeMap::new(),
            best: None,
            started: Instant::now(),
            exhausted: false,
            sync: spec.sync,
            sync_state: SyncState::new(),
            convergence: mm_telemetry::enabled().then(ConvergenceTrace::new),
            track,
            job_span,
        }
    }

    /// Keep this job's pipeline full: propose up to its lookahead (capped by
    /// remaining budget and pool depth) and submit as one chunk job per
    /// worker, so batched evaluators see whole proposal batches.
    fn fill(
        &mut self,
        pool: &mut EvalPool,
        id_to_job: &mut HashMap<u64, usize>,
        buf: &mut Vec<Mapping>,
    ) {
        if self.exhausted || self.submitted >= self.budget {
            return;
        }
        // At least MIN_PIPELINE_DEPTH in flight (when the searcher tolerates
        // it), so per-worker chunk jobs carry real batches for
        // `evaluate_batch` fast paths like the surrogate's forward pass.
        let cap = pipeline_depth(self.search.lookahead(), pool.workers()) as u64;
        // With sync on, never propose past the next sync boundary: a sync
        // point mutates searcher state (and may draw from the job RNG), so
        // it must land at a *fixed* position in the proposal stream. If the
        // pipeline could run ahead of the boundary, how many proposals were
        // drawn before the adopt/restart would depend on arrival timing —
        // and the result on pool scheduling. The pipeline drains briefly at
        // each boundary; that bounded stall is the price of determinism.
        let horizon = if self.sync.is_enabled() {
            ((self.completed / JOB_SYNC_INTERVAL + 1) * JOB_SYNC_INTERVAL).min(self.budget)
        } else {
            self.budget
        };
        let room = cap
            .saturating_sub(self.pending.len() as u64)
            .min(horizon - self.submitted);
        if room == 0 {
            return;
        }
        buf.clear();
        self.search
            .propose(&*self.space, &mut self.rng, room as usize, buf);
        if buf.is_empty() {
            // Contract: with nothing outstanding the searcher must propose;
            // an empty batch then means its space/schedule is exhausted.
            if self.pending.is_empty() {
                self.exhausted = true;
            }
            return;
        }
        let ids = pool.submit_chunked(Some(Arc::clone(&self.evaluator)), buf);
        for (off, mapping) in buf.iter().enumerate() {
            let id = ids.start + off as u64;
            id_to_job.insert(id, self.index);
            self.pending.push_back((id, mapping.clone()));
        }
        self.submitted += buf.len() as u64;
    }

    /// Report every completion available in proposal order, applying the
    /// job-local sync policy at its cadence. The sequence of `report` and
    /// `observe_global_best` calls depends only on the completed-count, so
    /// arrival batching cannot perturb it.
    fn flush(&mut self) {
        while let Some(&(front_id, _)) = self.pending.front() {
            let Some(eval) = self.arrived.remove(&front_id) else {
                break;
            };
            let Some((_, mapping)) = self.pending.pop_front() else {
                break;
            };
            if let Some(convergence) = self.convergence.as_mut() {
                convergence.record(eval.primary());
            }
            self.search.report(&mapping, eval.primary(), &mut self.rng);
            let improved = match self.best.as_ref() {
                None => true,
                Some((_, incumbent)) => eval.better_than(incumbent),
            };
            if improved {
                self.best = Some((mapping, eval));
            }
            self.completed += 1;
            if self.sync.is_enabled() && self.completed.is_multiple_of(JOB_SYNC_INTERVAL) {
                self.sync_point();
            }
        }
    }

    /// One job-local sync point: consult the policy with the job's stall
    /// counter and budget progress; when it acts, hand the job's own best
    /// back to the searcher (re-anchor or warm restart).
    fn sync_point(&mut self) {
        let _span = self.track.as_ref().and_then(|t| t.span("job.sync"));
        let Some((mapping, eval)) = self.best.clone() else {
            return;
        };
        let own = eval.primary();
        let progress = if self.budget == 0 {
            1.0
        } else {
            self.completed as f64 / self.budget as f64
        };
        let Some(action) = self
            .sync_state
            .decide(&self.sync, Some(own), progress, &mut self.rng)
        else {
            return;
        };
        tele_sync_points().bump(1);
        self.search
            .observe_global_best(&*self.space, &mapping, own, action, &mut self.rng);
    }

    fn done(&self) -> bool {
        self.pending.is_empty() && (self.exhausted || self.completed >= self.budget)
    }

    fn finish(mut self) -> (usize, JobOutcome) {
        tele_jobs_finished().bump(1);
        mm_telemetry::event("serve.job.finish", || {
            format!(
                "index={} evals={} exhausted={}",
                self.index, self.completed, self.exhausted
            )
        });
        // Close the lifecycle span before the outcome is built, so a
        // snapshot taken right after the scheduler returns includes it.
        drop(self.job_span.take());
        (
            self.index,
            JobOutcome {
                searcher: self.search.name().to_string(),
                metric_names: self.evaluator.metrics().to_vec(),
                best: self.best,
                evaluations: self.completed,
                wall_time_s: self.started.elapsed().as_secs_f64(),
                exhausted: self.exhausted,
                convergence: self.convergence,
            },
        )
    }
}

/// Run every job to completion over `pool`, multiplexing up to `max_active`
/// at once with at most `queue_capacity` more staged behind them. Outcomes
/// come back indexed by each spec's `index`.
///
/// # Panics
///
/// Panics if the pool has jobs in flight, or if a pool worker dies (a
/// panicking evaluator propagates, as with `EvalPool::recv`).
pub(crate) fn run_jobs(
    pool: &mut EvalPool,
    jobs: Vec<JobSpec>,
    max_active: usize,
    queue_capacity: usize,
) -> Vec<JobOutcome> {
    assert_eq!(pool.in_flight(), 0, "scheduler needs an idle pool");
    let sched_track = mm_telemetry::span_enabled().then(|| mm_telemetry::track("serve.scheduler"));
    let _run_span = sched_track
        .as_ref()
        .and_then(|t| t.span("scheduler.run_jobs"));
    let max_active = max_active.max(1);
    let queue_capacity = queue_capacity.max(1);
    let n = jobs.len();
    let mut outcomes: Vec<Option<JobOutcome>> = (0..n).map(|_| None).collect();
    let mut source = jobs.into_iter();
    let mut queue: VecDeque<JobSpec> = VecDeque::new();
    let mut active: Vec<ActiveJob> = Vec::new();
    let mut id_to_job: HashMap<u64, usize> = HashMap::new();
    let mut buf: Vec<Mapping> = Vec::new();
    let mut source_drained = false;

    loop {
        // Admission: source → bounded queue → active set, in spec order.
        while !source_drained && queue.len() < queue_capacity {
            match source.next() {
                Some(spec) => queue.push_back(spec),
                None => source_drained = true,
            }
        }
        while active.len() < max_active {
            let Some(spec) = queue.pop_front() else { break };
            active.push(ActiveJob::start(spec));
        }
        if active.is_empty() {
            break;
        }

        // Keep every active pipeline full before blocking on a result.
        for job in active.iter_mut() {
            job.fill(pool, &mut id_to_job, &mut buf);
        }

        // Route one completion back to its job (proposal-order per job).
        if pool.in_flight() > 0 {
            let (id, eval) = {
                let _span = sched_track.as_ref().and_then(|t| t.span("scheduler.wait"));
                pool.recv()
            };
            let Some(index) = id_to_job.remove(&id) else {
                debug_assert!(false, "completion {id} not routed to any job");
                continue;
            };
            let Some(job) = active.iter_mut().find(|j| j.index == index) else {
                debug_assert!(false, "routed job {index} retired with results in flight");
                continue;
            };
            job.arrived.insert(id, eval);
            job.flush();
        }

        // Retire finished jobs, preserving admission order of the rest.
        let mut i = 0;
        while i < active.len() {
            if active[i].done() {
                let (index, outcome) = active.remove(i).finish();
                outcomes[index] = Some(outcome);
            } else {
                i += 1;
            }
        }
    }
    outcomes
        .into_iter()
        // mm-lint: allow(panic): the drive loop above exits only once every
        // admitted job finished; a hole here is a scheduler bug that must
        // fail loudly rather than return a silently shortened report.
        .map(|o| o.expect("every job ran to completion"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_accel::{Architecture, CostModel};
    use mm_mapper::ModelEvaluator;
    use mm_mapspace::{MapSpace, ProblemSpec};
    use mm_search::{GeneticAlgorithm, GeneticConfig, RandomSearch, SimulatedAnnealing};

    fn spec(index: usize, w: u64, seed: u64, budget: u64) -> JobSpec {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(w, 5);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, problem);
        JobSpec {
            index,
            space: Box::new(space),
            evaluator: Arc::new(ModelEvaluator::edp(model)),
            search: Box::new(RandomSearch::new()),
            seed,
            budget,
            sync: SyncPolicy::Off,
            shard_horizon: false,
        }
    }

    #[test]
    fn jobs_complete_with_exact_budgets_over_one_pool() {
        let mut pool = EvalPool::shared(3);
        let jobs: Vec<JobSpec> = (0..5)
            .map(|i| spec(i, 128 + 64 * i as u64, i as u64, 40))
            .collect();
        let outcomes = run_jobs(&mut pool, jobs, 2, 2);
        assert_eq!(outcomes.len(), 5);
        for o in &outcomes {
            assert_eq!(o.evaluations, 40);
            assert!(!o.exhausted);
            assert!(o.best.as_ref().unwrap().1.primary().is_finite());
        }
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn outcomes_are_independent_of_concurrency_and_workers() {
        let run = |workers: usize, max_active: usize| -> Vec<f64> {
            let mut pool = EvalPool::shared(workers);
            let jobs: Vec<JobSpec> = (0..4).map(|i| spec(i, 200, 7 + i as u64, 60)).collect();
            run_jobs(&mut pool, jobs, max_active, 4)
                .iter()
                .map(|o| o.best.as_ref().unwrap().1.primary())
                .collect()
        };
        let base = run(1, 1);
        assert_eq!(base, run(3, 2));
        assert_eq!(base, run(2, 4));
    }

    #[test]
    fn mixed_searchers_multiplex_deterministically() {
        let mk = || -> Vec<JobSpec> {
            (0..3)
                .map(|i| {
                    let mut s = spec(i, 256, 11 + i as u64, 50);
                    s.search = match i {
                        0 => Box::new(SimulatedAnnealing::default()),
                        1 => Box::new(GeneticAlgorithm::new(GeneticConfig {
                            population: 10,
                            ..GeneticConfig::default()
                        })),
                        _ => Box::new(RandomSearch::new()),
                    };
                    s
                })
                .collect()
        };
        let mut pool_a = EvalPool::shared(2);
        let a = run_jobs(&mut pool_a, mk(), 3, 3);
        let mut pool_b = EvalPool::shared(4);
        let b = run_jobs(&mut pool_b, mk(), 2, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.searcher, y.searcher);
            assert_eq!(x.evaluations, y.evaluations);
            assert_eq!(
                x.best.as_ref().unwrap().1,
                y.best.as_ref().unwrap().1,
                "same spec ⇒ same best, regardless of pool shape"
            );
        }
    }

    /// Records the horizon each job's searcher was begun with.
    struct HorizonSpy {
        inner: RandomSearch,
        seen: Arc<std::sync::Mutex<Vec<u64>>>,
    }

    impl ProposalSearch for HorizonSpy {
        fn name(&self) -> &str {
            "HorizonSpy"
        }
        fn begin(
            &mut self,
            space: &dyn mm_mapspace::MapSpaceView,
            horizon: Option<u64>,
            rng: &mut StdRng,
        ) {
            self.seen
                .lock()
                .unwrap()
                .push(horizon.expect("scheduler always bounds jobs"));
            self.inner.begin(space, horizon, rng);
        }
        fn propose(
            &mut self,
            space: &dyn mm_mapspace::MapSpaceView,
            rng: &mut StdRng,
            max: usize,
            out: &mut Vec<Mapping>,
        ) {
            self.inner.propose(space, rng, max, out);
        }
        fn report(&mut self, mapping: &Mapping, cost: f64, rng: &mut StdRng) {
            self.inner.report(mapping, cost, rng);
        }
    }

    #[test]
    fn shard_horizon_hint_scales_job_begin_horizons() {
        use mm_mapspace::MapSpaceView;
        // One job per shard of a sharded layer space: the hint must shrink
        // the begin-horizon below the raw budget (without costing budget),
        // and stay identical across pool shapes.
        let mk = |shard_horizon: bool, seen: &Arc<std::sync::Mutex<Vec<u64>>>| -> Vec<JobSpec> {
            let arch = Architecture::example();
            let problem = ProblemSpec::conv1d(512, 5);
            let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
            (0..2)
                .map(|s| JobSpec {
                    index: s,
                    space: space.shard(s, 64).clone_view(),
                    evaluator: Arc::new(ModelEvaluator::edp(CostModel::new(
                        arch.clone(),
                        problem.clone(),
                    ))),
                    search: Box::new(HorizonSpy {
                        inner: RandomSearch::new(),
                        seen: Arc::clone(seen),
                    }),
                    seed: 9 + s as u64,
                    budget: 400,
                    sync: SyncPolicy::Off,
                    shard_horizon,
                })
                .collect()
        };
        let run = |workers: usize, hint: bool| -> (Vec<u64>, Vec<u64>) {
            let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
            let mut pool = EvalPool::shared(workers);
            let evals = run_jobs(&mut pool, mk(hint, &seen), 2, 2)
                .iter()
                .map(|o| o.evaluations)
                .collect();
            let mut horizons = seen.lock().unwrap().clone();
            horizons.sort_unstable();
            (horizons, evals)
        };
        let (raw, raw_evals) = run(1, false);
        assert_eq!(raw, vec![400; 2], "un-hinted jobs see their raw budget");
        assert_eq!(raw_evals, vec![400; 2]);
        let (hinted, hinted_evals) = run(2, true);
        for h in &hinted {
            assert!(
                (1..400).contains(h),
                "hinted horizon must shrink below the budget, got {h}"
            );
        }
        assert_eq!(hinted_evals, vec![400; 2], "the hint costs no budget");
        assert_eq!(hinted, run(3, true).0, "hint stays pool-shape independent");
    }

    #[test]
    fn empty_job_list_is_a_noop() {
        let mut pool = EvalPool::shared(1);
        assert!(run_jobs(&mut pool, Vec::new(), 2, 2).is_empty());
    }

    #[test]
    fn job_local_sync_stays_deterministic_and_changes_the_search() {
        // Budget spans several JOB_SYNC_INTERVAL cadences so the policy
        // actually fires; SA makes re-anchoring visible.
        let mk = |sync: SyncPolicy| -> Vec<JobSpec> {
            (0..2)
                .map(|i| {
                    let mut s = spec(i, 256, 5 + i as u64, 3 * JOB_SYNC_INTERVAL);
                    s.search = Box::new(SimulatedAnnealing::default());
                    s.sync = sync;
                    s
                })
                .collect()
        };
        let run = |workers: usize, sync: SyncPolicy| -> Vec<f64> {
            let mut pool = EvalPool::shared(workers);
            run_jobs(&mut pool, mk(sync), 2, 2)
                .iter()
                .map(|o| o.best.as_ref().unwrap().1.primary())
                .collect()
        };
        let anchored = run(1, SyncPolicy::Anchor);
        assert_eq!(
            anchored,
            run(3, SyncPolicy::Anchor),
            "job-local sync must stay worker-count independent"
        );
        let restarted = run(1, SyncPolicy::Restart { patience: 0 });
        assert_eq!(restarted, run(2, SyncPolicy::Restart { patience: 0 }));
        assert_ne!(
            restarted,
            run(1, SyncPolicy::Off),
            "an always-firing restart policy must steer the search"
        );
    }
}
