//! The fair-share layer-job scheduler: multiplex many `ProposalSearch`
//! instances — from many *concurrent requests* — over **one** shared
//! [`EvalPool`].
//!
//! Where `mm_mapper::run_pipelined` drives a single searcher against a pool,
//! this scheduler drives the job queues of every in-flight request at once:
//! up to `max_active` jobs keep proposals in flight simultaneously, every
//! batch is tagged with the pool ids of its members, and completions are
//! routed back to the owning job in proposal order. Pool workers never idle
//! while any job still has budget, and pool threads are spawned once for
//! the service's lifetime instead of once per layer.
//!
//! # Fair share
//!
//! Pending jobs are grouped by owning request. When an active slot frees,
//! the scheduler activates the front job of the request minimizing
//! *(served budget + next job's budget) / weight* — deterministic weighted
//! fair queuing over evaluation budgets (ties resolve to the lower request
//! id; the arithmetic is exact integer cross-multiplication). A request
//! with weight *w* therefore gets *w*× the pool share of a baseline
//! request. Fairness steers only *when* jobs run: outcomes are a pure
//! function of each job's spec, so interleaving never touches results.
//!
//! # Determinism
//!
//! Each job owns an RNG stream seeded from its spec alone, proposals are
//! reported back in proposal order per job, and best-mapping ties resolve
//! first-found. A searcher's proposal sequence must not depend on how
//! `propose` calls are batched (the same contract `run_pipelined` relies
//! on), so a job's outcome is independent of worker count, concurrency
//! level, sibling requests, and completion timing — only the spec (seed,
//! budget, space, evaluator, sync policy) matters.
//!
//! # Failure isolation
//!
//! A panicking evaluator or searcher fails only its own job: the pool
//! worker survives (`EvalPool::recv_result` surfaces the panic as an `Err`
//! result), the job drains its in-flight proposals without reporting them
//! (results that had already arrived out of order are dropped with the
//! error — they were consumed from the pool and cannot arrive again), and
//! retires as [`JobEnd::Failed`]. Sibling jobs — including jobs of the
//! same request — keep running; the service decides which requests the
//! failure dooms.
//!
//! # Job-local sync
//!
//! A [`SyncPolicy`] on the spec is applied *within* each job: every
//! [`JOB_SYNC_INTERVAL`] completed evaluations the job's own best-so-far
//! is offered back to its searcher (`Anchor`/`Annealed` pull a drifting
//! trajectory back onto it, `Restart` warm-restarts a stalled job from
//! it). Keeping the incumbent job-local preserves both the determinism
//! guarantee above and the disjointness of sharded layer jobs.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use mm_mapper::{pipeline_depth, CostEvaluator, EvalPool, Evaluation, OptMetric};
use mm_mapspace::{MapSpaceView, Mapping};
use mm_search::{ConvergenceTrace, ProposalBuf, ProposalSearch, SyncPolicy, SyncState};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Completed evaluations between job-local sync points (matches the
/// mapper's default `sync_interval`).
pub(crate) const JOB_SYNC_INTERVAL: u64 = 64;

fn tele_jobs_started() -> &'static Arc<mm_telemetry::Counter> {
    static C: OnceLock<Arc<mm_telemetry::Counter>> = OnceLock::new();
    C.get_or_init(|| mm_telemetry::counter("serve.scheduler.jobs_started"))
}

fn tele_jobs_finished() -> &'static Arc<mm_telemetry::Counter> {
    static C: OnceLock<Arc<mm_telemetry::Counter>> = OnceLock::new();
    C.get_or_init(|| mm_telemetry::counter("serve.scheduler.jobs_finished"))
}

fn tele_jobs_failed() -> &'static Arc<mm_telemetry::Counter> {
    static C: OnceLock<Arc<mm_telemetry::Counter>> = OnceLock::new();
    C.get_or_init(|| mm_telemetry::counter("serve.scheduler.jobs_failed"))
}

fn tele_sync_points() -> &'static Arc<mm_telemetry::Counter> {
    static C: OnceLock<Arc<mm_telemetry::Counter>> = OnceLock::new();
    C.get_or_init(|| mm_telemetry::counter("serve.scheduler.sync_actions"))
}

/// One layer search to run: everything the scheduler needs, self-contained.
pub(crate) struct JobSpec {
    /// Owning request: the fair-share group this job's budget bills to.
    pub request: u64,
    /// Fair-share weight of the owning request (clamped to ≥ 1).
    pub weight: u64,
    /// The map-space view searched (the full space or one shard of it).
    pub space: Box<dyn MapSpaceView>,
    /// Scores this job's proposals (routed per batch on the shared pool).
    pub evaluator: Arc<dyn CostEvaluator>,
    /// The search method instance.
    pub search: Box<dyn ProposalSearch>,
    /// Seed of this job's private RNG stream.
    pub seed: u64,
    /// Evaluations to spend.
    pub budget: u64,
    /// Job-local global-best sync policy (see the module docs).
    pub sync: SyncPolicy,
    /// Shard-aware horizon hint: begin the searcher with the view-scaled
    /// horizon (`MapSpaceView::horizon_hint`) instead of the raw budget, so
    /// schedule-based searchers confined to a shard stop tuning their
    /// schedules as if they owned the full space.
    pub shard_horizon: bool,
}

/// What one layer search produced.
#[derive(Debug, Clone)]
pub(crate) struct JobOutcome {
    pub searcher: String,
    pub metric_names: Vec<OptMetric>,
    pub best: Option<(Mapping, Evaluation)>,
    pub evaluations: u64,
    pub wall_time_s: f64,
    pub exhausted: bool,
    /// Best-so-far convergence indexed by this job's completed-eval count
    /// (recorded when telemetry is enabled; completions are reported in
    /// proposal order, so the curve is pool-shape independent).
    pub convergence: Option<ConvergenceTrace>,
}

/// How one job left the scheduler.
#[derive(Debug)]
pub(crate) enum JobEnd {
    /// Ran to completion (budget spent or space exhausted).
    Done(JobOutcome),
    /// A worker evaluating this job's proposals panicked; the message is
    /// the propagated panic payload.
    Failed(String),
    /// Cancelled by the service before completion (its subscribers all
    /// failed); in-flight proposals were drained and discarded.
    Cancelled,
}

/// What one [`Scheduler::step`] did, for the service's bookkeeping.
#[derive(Debug, Default)]
pub(crate) struct StepEvents {
    /// Requests whose *first* job was activated this step (the
    /// queue→run transition of the request lifecycle).
    pub started: Vec<u64>,
    /// Jobs that left the scheduler this step, by job id.
    pub finished: Vec<(u64, JobEnd)>,
}

/// A job currently multiplexed on the pool.
struct ActiveJob {
    job_id: u64,
    request: u64,
    space: Box<dyn MapSpaceView>,
    evaluator: Arc<dyn CostEvaluator>,
    search: Box<dyn ProposalSearch>,
    rng: StdRng,
    budget: u64,
    submitted: u64,
    completed: u64,
    /// Proposals in flight, in proposal order (front = oldest).
    pending: VecDeque<(u64, Mapping)>,
    /// Results that arrived out of order, keyed by pool id.
    arrived: BTreeMap<u64, Evaluation>,
    best: Option<(Mapping, Evaluation)>,
    started: Instant,
    exhausted: bool,
    /// First worker-panic message routed to this job; once set, the job
    /// only drains its in-flight proposals.
    failed: Option<String>,
    /// Cancelled by the service; drains like a failed job.
    cancelled: bool,
    sync: SyncPolicy,
    /// Stall bookkeeping (consecutive non-improving sync points) consumed
    /// by [`SyncPolicy::decide`].
    sync_state: SyncState,
    /// Improvement-only convergence recorder (telemetry enabled).
    convergence: Option<ConvergenceTrace>,
    /// This job's span track (`serve.job{id}`), spans level only.
    track: Option<Arc<mm_telemetry::Track>>,
    /// The job-lifecycle span, held open from start to finish.
    job_span: Option<mm_telemetry::SpanGuard>,
}

impl ActiveJob {
    fn start(job_id: u64, mut spec: JobSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let horizon = if spec.shard_horizon {
            spec.space.horizon_hint(spec.budget)
        } else {
            spec.budget
        };
        spec.search.begin(&*spec.space, Some(horizon), &mut rng);
        tele_jobs_started().bump(1);
        mm_telemetry::event("serve.job.start", || {
            format!(
                "job={job_id} request={} budget={}",
                spec.request, spec.budget
            )
        });
        let track = mm_telemetry::span_enabled()
            .then(|| mm_telemetry::track(&format!("serve.job{job_id}")));
        let job_span = track.as_ref().and_then(|t| t.span("job.run"));
        ActiveJob {
            job_id,
            request: spec.request,
            space: spec.space,
            evaluator: spec.evaluator,
            search: spec.search,
            rng,
            budget: spec.budget,
            submitted: 0,
            completed: 0,
            pending: VecDeque::new(),
            arrived: BTreeMap::new(),
            best: None,
            started: Instant::now(),
            exhausted: false,
            failed: None,
            cancelled: false,
            sync: spec.sync,
            sync_state: SyncState::new(),
            convergence: mm_telemetry::enabled().then(ConvergenceTrace::new),
            track,
            job_span,
        }
    }

    /// Whether this job is merely draining its in-flight proposals.
    fn doomed(&self) -> bool {
        self.failed.is_some() || self.cancelled
    }

    /// Keep this job's pipeline full: propose up to its lookahead (capped by
    /// remaining budget and pool depth) and submit as one chunk job per
    /// worker, so batched evaluators see whole proposal batches.
    fn fill(
        &mut self,
        pool: &mut EvalPool,
        id_to_job: &mut HashMap<u64, u64>,
        buf: &mut ProposalBuf,
    ) {
        if self.doomed() || self.exhausted || self.submitted >= self.budget {
            return;
        }
        // At least MIN_PIPELINE_DEPTH in flight (when the searcher tolerates
        // it), so per-worker chunk jobs carry real batches for
        // `evaluate_batch` fast paths like the surrogate's forward pass.
        let cap = pipeline_depth(self.search.lookahead(), pool.workers()) as u64;
        // With sync on, never propose past the next sync boundary: a sync
        // point mutates searcher state (and may draw from the job RNG), so
        // it must land at a *fixed* position in the proposal stream. If the
        // pipeline could run ahead of the boundary, how many proposals were
        // drawn before the adopt/restart would depend on arrival timing —
        // and the result on pool scheduling. The pipeline drains briefly at
        // each boundary; that bounded stall is the price of determinism.
        let horizon = if self.sync.is_enabled() {
            ((self.completed / JOB_SYNC_INTERVAL + 1) * JOB_SYNC_INTERVAL).min(self.budget)
        } else {
            self.budget
        };
        let room = cap
            .saturating_sub(self.pending.len() as u64)
            .min(horizon - self.submitted);
        if room == 0 {
            return;
        }
        buf.clear();
        self.search
            .propose(&*self.space, &mut self.rng, room as usize, buf);
        if buf.is_empty() {
            // Contract: with nothing outstanding the searcher must propose;
            // an empty batch then means its space/schedule is exhausted.
            if self.pending.is_empty() {
                self.exhausted = true;
            }
            return;
        }
        let ids = pool.submit_chunked(Some(Arc::clone(&self.evaluator)), buf);
        for (off, mapping) in buf.iter().enumerate() {
            let id = ids.start + off as u64;
            id_to_job.insert(id, self.job_id);
            self.pending.push_back((id, mapping.clone()));
        }
        self.submitted += buf.len() as u64;
    }

    /// Record one arrived result (or the panic that replaced it). Doomed
    /// jobs only shed the proposal from their in-flight set; healthy jobs
    /// flush completions in proposal order.
    fn route(&mut self, id: u64, result: Result<Evaluation, Arc<str>>) {
        if self.doomed() {
            self.pending.retain(|(pid, _)| *pid != id);
            self.arrived.remove(&id);
            return;
        }
        match result {
            Ok(eval) => {
                self.arrived.insert(id, eval);
                self.flush();
            }
            Err(message) => {
                tele_jobs_failed().bump(1);
                mm_telemetry::event("serve.job.fail", || {
                    format!("job={} request={}", self.job_id, self.request)
                });
                // One String per failed job (not per batch member): the
                // pool shares the panic message as an `Arc<str>`.
                self.failed = Some(message.to_string());
                // Results buffered out of order were already consumed from
                // the pool and will never arrive again: drop their pending
                // entries with the errored one, or `done()` waits forever
                // for them and the doomed job never retires.
                let arrived = std::mem::take(&mut self.arrived);
                self.pending
                    .retain(|(pid, _)| *pid != id && !arrived.contains_key(pid));
            }
        }
    }

    /// Report every completion available in proposal order, applying the
    /// job-local sync policy at its cadence. The sequence of `report` and
    /// `observe_global_best` calls depends only on the completed-count, so
    /// arrival batching cannot perturb it.
    fn flush(&mut self) {
        while let Some(&(front_id, _)) = self.pending.front() {
            let Some(eval) = self.arrived.remove(&front_id) else {
                break;
            };
            let Some((_, mapping)) = self.pending.pop_front() else {
                break;
            };
            if let Some(convergence) = self.convergence.as_mut() {
                convergence.record(eval.primary());
            }
            self.search.report(&mapping, eval.primary(), &mut self.rng);
            let improved = match self.best.as_ref() {
                None => true,
                Some((_, incumbent)) => eval.better_than(incumbent),
            };
            if improved {
                self.best = Some((mapping, eval));
            }
            self.completed += 1;
            if self.sync.is_enabled() && self.completed.is_multiple_of(JOB_SYNC_INTERVAL) {
                self.sync_point();
            }
        }
    }

    /// One job-local sync point: consult the policy with the job's stall
    /// counter and budget progress; when it acts, hand the job's own best
    /// back to the searcher (re-anchor or warm restart).
    fn sync_point(&mut self) {
        let _span = self.track.as_ref().and_then(|t| t.span("job.sync"));
        let Some((mapping, eval)) = self.best.clone() else {
            return;
        };
        let own = eval.primary();
        let progress = if self.budget == 0 {
            1.0
        } else {
            self.completed as f64 / self.budget as f64
        };
        let Some(action) = self
            .sync_state
            .decide(&self.sync, Some(own), progress, &mut self.rng)
        else {
            return;
        };
        tele_sync_points().bump(1);
        self.search
            .observe_global_best(&*self.space, &mapping, own, action, &mut self.rng);
    }

    fn done(&self) -> bool {
        if self.doomed() {
            return self.pending.is_empty();
        }
        self.pending.is_empty() && (self.exhausted || self.completed >= self.budget)
    }

    fn finish(mut self) -> (u64, JobEnd) {
        tele_jobs_finished().bump(1);
        mm_telemetry::event("serve.job.finish", || {
            format!(
                "job={} evals={} exhausted={} failed={} cancelled={}",
                self.job_id,
                self.completed,
                self.exhausted,
                self.failed.is_some(),
                self.cancelled
            )
        });
        // Close the lifecycle span before the outcome is built, so a
        // snapshot taken right after the step returns includes it.
        drop(self.job_span.take());
        let end = if let Some(message) = self.failed {
            JobEnd::Failed(message)
        } else if self.cancelled {
            JobEnd::Cancelled
        } else {
            JobEnd::Done(JobOutcome {
                searcher: self.search.name().to_string(),
                metric_names: self.evaluator.metrics().to_vec(),
                best: self.best,
                evaluations: self.completed,
                wall_time_s: self.started.elapsed().as_secs_f64(),
                exhausted: self.exhausted,
                convergence: self.convergence,
            })
        };
        (self.job_id, end)
    }
}

/// Per-request fair-share state: the pending job queue and the budget this
/// request has been served so far.
struct RequestQueue {
    weight: u64,
    served: u64,
    queue: VecDeque<(u64, JobSpec)>,
    started: bool,
}

/// The persistent fair-share scheduler of one `MappingService`.
///
/// Owns the pending job queues of every in-flight request and the active
/// set multiplexed on the pool; the service calls [`enqueue`],
/// [`step`]s until the results it needs arrive, and [`cancel_jobs`] when a
/// failure dooms part of the plan.
///
/// [`enqueue`]: Scheduler::enqueue
/// [`step`]: Scheduler::step
/// [`cancel_jobs`]: Scheduler::cancel_jobs
pub(crate) struct Scheduler {
    max_active: usize,
    next_job_id: u64,
    /// Pending queues by request id — a BTreeMap so fair-share ties break
    /// by request id deterministically.
    requests: BTreeMap<u64, RequestQueue>,
    active: Vec<ActiveJob>,
    /// Pool id → job id of every proposal in flight.
    id_to_job: HashMap<u64, u64>,
    buf: ProposalBuf,
    track: Option<Arc<mm_telemetry::Track>>,
}

impl Scheduler {
    pub fn new(max_active: usize) -> Self {
        Scheduler {
            max_active: max_active.max(1),
            next_job_id: 0,
            requests: BTreeMap::new(),
            active: Vec::new(),
            id_to_job: HashMap::new(),
            buf: ProposalBuf::new(),
            track: mm_telemetry::span_enabled().then(|| mm_telemetry::track("serve.scheduler")),
        }
    }

    /// Queue `spec` behind its request's earlier jobs; returns the job id.
    pub fn enqueue(&mut self, spec: JobSpec) -> u64 {
        let job_id = self.next_job_id;
        self.next_job_id += 1;
        let entry = self
            .requests
            .entry(spec.request)
            .or_insert_with(|| RequestQueue {
                weight: spec.weight.max(1),
                served: 0,
                queue: VecDeque::new(),
                started: false,
            });
        entry.queue.push_back((job_id, spec));
        job_id
    }

    /// Nothing queued and nothing active.
    pub fn idle(&self) -> bool {
        self.active.is_empty() && self.requests.is_empty()
    }

    /// Drop the given jobs: pending ones are dequeued outright; active ones
    /// stop proposing and drain their in-flight results, retiring as
    /// [`JobEnd::Cancelled`].
    pub fn cancel_jobs(&mut self, job_ids: &[u64]) {
        for request in self.requests.values_mut() {
            request.queue.retain(|(id, _)| !job_ids.contains(id));
        }
        self.requests.retain(|_, r| !r.queue.is_empty());
        for job in self.active.iter_mut() {
            if job_ids.contains(&job.job_id) {
                job.cancelled = true;
            }
        }
    }

    /// The request that should activate next under weighted fair queuing:
    /// minimize (served + next budget) / weight, ties to the lower request
    /// id. Exact integer arithmetic — no float order sensitivity.
    fn pick_next(&self) -> Option<u64> {
        let mut best: Option<(u128, u64, u64)> = None; // (num, weight, request)
        for (&request, rq) in &self.requests {
            let Some((_, front)) = rq.queue.front() else {
                continue;
            };
            let num = (rq.served + front.budget).max(1) as u128;
            let better = match best {
                None => true,
                // num_a / w_a < num_b / w_b  ⟺  num_a * w_b < num_b * w_a
                Some((bn, bw, _)) => num * (bw as u128) < bn * (rq.weight as u128),
            };
            if better {
                best = Some((num, rq.weight, request));
            }
        }
        best.map(|(_, _, request)| request)
    }

    /// One scheduling step: activate pending jobs into free slots by fair
    /// share, keep every active pipeline full, route one completion, and
    /// retire finished jobs. Progress is guaranteed whenever `!idle()`.
    pub fn step(&mut self, pool: &mut EvalPool) -> StepEvents {
        let mut events = StepEvents::default();

        // Activation: fair-share pick until the active set is full.
        while self.active.len() < self.max_active {
            let Some(request) = self.pick_next() else {
                break;
            };
            let Some(rq) = self.requests.get_mut(&request) else {
                break;
            };
            let Some((job_id, spec)) = rq.queue.pop_front() else {
                break;
            };
            rq.served += spec.budget;
            if !rq.started {
                rq.started = true;
                events.started.push(request);
            }
            if rq.queue.is_empty() {
                self.requests.remove(&request);
            }
            self.active.push(ActiveJob::start(job_id, spec));
        }

        // Keep every active pipeline full before blocking on a result.
        for job in self.active.iter_mut() {
            job.fill(pool, &mut self.id_to_job, &mut self.buf);
        }

        // Route one completion back to its job (proposal-order per job).
        if pool.in_flight() > 0 {
            let (id, result) = {
                let _span = self.track.as_ref().and_then(|t| t.span("scheduler.wait"));
                pool.recv_result()
            };
            if let Some(job_id) = self.id_to_job.remove(&id) {
                if let Some(job) = self.active.iter_mut().find(|j| j.job_id == job_id) {
                    job.route(id, result);
                } else {
                    debug_assert!(false, "routed job {job_id} retired with results in flight");
                }
            } else {
                debug_assert!(false, "completion {id} not routed to any job");
            }
        }

        // Retire finished jobs, preserving activation order of the rest.
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].done() {
                events.finished.push(self.active.remove(i).finish());
            } else {
                i += 1;
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_accel::{Architecture, CostModel};
    use mm_mapper::ModelEvaluator;
    use mm_mapspace::{MapSpace, ProblemSpec};
    use mm_search::{GeneticAlgorithm, GeneticConfig, RandomSearch, SimulatedAnnealing};

    fn spec(request: u64, w: u64, seed: u64, budget: u64) -> JobSpec {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(w, 5);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, problem);
        JobSpec {
            request,
            weight: 1,
            space: Box::new(space),
            evaluator: Arc::new(ModelEvaluator::edp(model)),
            search: Box::new(RandomSearch::new()),
            seed,
            budget,
            sync: SyncPolicy::Off,
            shard_horizon: false,
        }
    }

    /// Drive `specs` to completion (one request per spec), returning
    /// outcomes in enqueue order — the shape of the old `run_jobs` helper,
    /// so the determinism suite exercises the persistent scheduler the
    /// same way the service does.
    fn run_specs(pool: &mut EvalPool, specs: Vec<JobSpec>, max_active: usize) -> Vec<JobOutcome> {
        let mut sched = Scheduler::new(max_active);
        let ids: Vec<u64> = specs.into_iter().map(|s| sched.enqueue(s)).collect();
        let mut ends: HashMap<u64, JobOutcome> = HashMap::new();
        while !sched.idle() {
            for (job, end) in sched.step(pool).finished {
                match end {
                    JobEnd::Done(outcome) => {
                        ends.insert(job, outcome);
                    }
                    other => panic!("job {job} ended {other:?} in a healthy run"),
                }
            }
        }
        assert_eq!(pool.in_flight(), 0);
        ids.into_iter()
            .map(|id| ends.remove(&id).expect("every enqueued job retires"))
            .collect()
    }

    #[test]
    fn jobs_complete_with_exact_budgets_over_one_pool() {
        let mut pool = EvalPool::shared(3);
        let jobs: Vec<JobSpec> = (0..5).map(|i| spec(i, 128 + 64 * i, i, 40)).collect();
        let outcomes = run_specs(&mut pool, jobs, 2);
        assert_eq!(outcomes.len(), 5);
        for o in &outcomes {
            assert_eq!(o.evaluations, 40);
            assert!(!o.exhausted);
            assert!(o.best.as_ref().unwrap().1.primary().is_finite());
        }
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn outcomes_are_independent_of_concurrency_and_workers() {
        let run = |workers: usize, max_active: usize| -> Vec<f64> {
            let mut pool = EvalPool::shared(workers);
            let jobs: Vec<JobSpec> = (0..4).map(|i| spec(i, 200, 7 + i, 60)).collect();
            run_specs(&mut pool, jobs, max_active)
                .iter()
                .map(|o| o.best.as_ref().unwrap().1.primary())
                .collect()
        };
        let base = run(1, 1);
        assert_eq!(base, run(3, 2));
        assert_eq!(base, run(2, 4));
    }

    #[test]
    fn mixed_searchers_multiplex_deterministically() {
        let mk = || -> Vec<JobSpec> {
            (0..3)
                .map(|i| {
                    let mut s = spec(i, 256, 11 + i, 50);
                    s.search = match i {
                        0 => Box::new(SimulatedAnnealing::default()),
                        1 => Box::new(GeneticAlgorithm::new(GeneticConfig {
                            population: 10,
                            ..GeneticConfig::default()
                        })),
                        _ => Box::new(RandomSearch::new()),
                    };
                    s
                })
                .collect()
        };
        let mut pool_a = EvalPool::shared(2);
        let a = run_specs(&mut pool_a, mk(), 3);
        let mut pool_b = EvalPool::shared(4);
        let b = run_specs(&mut pool_b, mk(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.searcher, y.searcher);
            assert_eq!(x.evaluations, y.evaluations);
            assert_eq!(
                x.best.as_ref().unwrap().1,
                y.best.as_ref().unwrap().1,
                "same spec ⇒ same best, regardless of pool shape"
            );
        }
    }

    #[test]
    fn fair_share_activates_by_weighted_virtual_finish() {
        // Two requests, equal job budgets, weights 3 and 1, one slot: the
        // weighted request owns ~3 of every 4 activations. Activation order
        // is observable through `started`+`finished` with max_active=1.
        let mut pool = EvalPool::shared(2);
        let mut sched = Scheduler::new(1);
        let mut owners: HashMap<u64, u64> = HashMap::new();
        for i in 0..6 {
            let mut s = spec(1, 128, 40 + i, 16);
            s.weight = 3;
            owners.insert(sched.enqueue(s), 1);
        }
        for i in 0..2 {
            owners.insert(sched.enqueue(spec(2, 128, 50 + i, 16)), 2);
        }
        let mut order: Vec<u64> = Vec::new();
        while !sched.idle() {
            for (job, end) in sched.step(&mut pool).finished {
                assert!(matches!(end, JobEnd::Done(_)));
                order.push(owners[&job]);
            }
        }
        // Virtual finish times: request 1 jobs at 16/3, 32/3, 48/3, 64/3…;
        // request 2 jobs at 16, 32. Expected interleaving: 1,1,1,2,1,1,1,2.
        assert_eq!(order, vec![1, 1, 1, 2, 1, 1, 1, 2]);
    }

    #[test]
    fn equal_weights_interleave_round_robin() {
        let mut pool = EvalPool::shared(1);
        let mut sched = Scheduler::new(1);
        let mut owners: HashMap<u64, u64> = HashMap::new();
        for r in 0..2u64 {
            for i in 0..3 {
                owners.insert(sched.enqueue(spec(r, 128, 60 + 10 * r + i, 8)), r);
            }
        }
        let mut order: Vec<u64> = Vec::new();
        while !sched.idle() {
            for (job, _) in sched.step(&mut pool).finished {
                order.push(owners[&job]);
            }
        }
        assert_eq!(order, vec![0, 1, 0, 1, 0, 1], "ties break by request id");
    }

    /// Records the horizon each job's searcher was begun with.
    struct HorizonSpy {
        inner: RandomSearch,
        seen: Arc<std::sync::Mutex<Vec<u64>>>,
    }

    impl ProposalSearch for HorizonSpy {
        fn name(&self) -> &str {
            "HorizonSpy"
        }
        fn begin(
            &mut self,
            space: &dyn mm_mapspace::MapSpaceView,
            horizon: Option<u64>,
            rng: &mut StdRng,
        ) {
            self.seen
                .lock()
                .unwrap()
                .push(horizon.expect("scheduler always bounds jobs"));
            self.inner.begin(space, horizon, rng);
        }
        fn propose(
            &mut self,
            space: &dyn mm_mapspace::MapSpaceView,
            rng: &mut StdRng,
            max: usize,
            out: &mut ProposalBuf,
        ) {
            self.inner.propose(space, rng, max, out);
        }
        fn report(&mut self, mapping: &Mapping, cost: f64, rng: &mut StdRng) {
            self.inner.report(mapping, cost, rng);
        }
    }

    #[test]
    fn shard_horizon_hint_scales_job_begin_horizons() {
        use mm_mapspace::MapSpaceView;
        // One job per shard of a sharded layer space: the hint must shrink
        // the begin-horizon below the raw budget (without costing budget),
        // and stay identical across pool shapes.
        let mk = |shard_horizon: bool, seen: &Arc<std::sync::Mutex<Vec<u64>>>| -> Vec<JobSpec> {
            let arch = Architecture::example();
            let problem = ProblemSpec::conv1d(512, 5);
            let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
            (0..2)
                .map(|s| JobSpec {
                    request: s,
                    weight: 1,
                    space: space.shard(s as usize, 64).clone_view(),
                    evaluator: Arc::new(ModelEvaluator::edp(CostModel::new(
                        arch.clone(),
                        problem.clone(),
                    ))),
                    search: Box::new(HorizonSpy {
                        inner: RandomSearch::new(),
                        seen: Arc::clone(seen),
                    }),
                    seed: 9 + s,
                    budget: 400,
                    sync: SyncPolicy::Off,
                    shard_horizon,
                })
                .collect()
        };
        let run = |workers: usize, hint: bool| -> (Vec<u64>, Vec<u64>) {
            let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
            let mut pool = EvalPool::shared(workers);
            let evals = run_specs(&mut pool, mk(hint, &seen), 2)
                .iter()
                .map(|o| o.evaluations)
                .collect();
            let mut horizons = seen.lock().unwrap().clone();
            horizons.sort_unstable();
            (horizons, evals)
        };
        let (raw, raw_evals) = run(1, false);
        assert_eq!(raw, vec![400; 2], "un-hinted jobs see their raw budget");
        assert_eq!(raw_evals, vec![400; 2]);
        let (hinted, hinted_evals) = run(2, true);
        for h in &hinted {
            assert!(
                (1..400).contains(h),
                "hinted horizon must shrink below the budget, got {h}"
            );
        }
        assert_eq!(hinted_evals, vec![400; 2], "the hint costs no budget");
        assert_eq!(hinted, run(3, true).0, "hint stays pool-shape independent");
    }

    #[test]
    fn empty_scheduler_is_idle() {
        let sched = Scheduler::new(2);
        assert!(sched.idle());
    }

    #[test]
    fn cancelled_pending_jobs_never_start() {
        let mut pool = EvalPool::shared(1);
        let mut sched = Scheduler::new(1);
        let keep = sched.enqueue(spec(0, 128, 1, 16));
        let drop_id = sched.enqueue(spec(1, 128, 2, 16));
        sched.cancel_jobs(&[drop_id]);
        let mut finished: Vec<u64> = Vec::new();
        while !sched.idle() {
            for (job, end) in sched.step(&mut pool).finished {
                assert!(matches!(end, JobEnd::Done(_)));
                finished.push(job);
            }
        }
        assert_eq!(finished, vec![keep], "the cancelled job never activated");
    }

    #[test]
    fn a_panic_drops_pending_entries_whose_results_already_arrived() {
        // With >1 worker a job's chunks complete independently, so Ok
        // results for later proposals can be buffered in `arrived` when an
        // earlier proposal's Err lands. Those results were consumed from
        // the pool; if their pending entries survived the failure the job
        // could never drain, and the whole service would hang.
        let mut job = ActiveJob::start(0, spec(0, 96, 3, 16));
        let mut proposals = ProposalBuf::new();
        job.search
            .propose(&*job.space, &mut job.rng, 3, &mut proposals);
        assert_eq!(proposals.len(), 3);
        for (i, mapping) in proposals.iter().enumerate() {
            job.pending.push_back((i as u64, mapping.clone()));
        }
        job.submitted = 3;
        // Results 1 and 2 arrive before 0 and buffer out of order.
        job.route(1, Ok(Evaluation::scalar(1.0)));
        job.route(2, Ok(Evaluation::scalar(2.0)));
        assert_eq!(job.arrived.len(), 2);
        assert_eq!(job.pending.len(), 3);
        // The worker evaluating proposal 0 panicked.
        job.route(0, Err("boom".into()));
        assert!(
            job.pending.is_empty(),
            "entries for consumed results must not outlive the failure"
        );
        assert!(
            job.done(),
            "the doomed job retires instead of waiting forever"
        );
    }

    /// Evaluator that stalls then panics on one poisoned mapping and scores
    /// everything else instantly, so with two workers the healthy chunk's
    /// Oks arrive — and buffer out of order — before the poisoned chunk's
    /// Errs are routed.
    struct SlowPoison {
        poison: Mapping,
        metrics: Vec<OptMetric>,
    }

    impl CostEvaluator for SlowPoison {
        fn metrics(&self) -> &[OptMetric] {
            &self.metrics
        }
        fn evaluate(&self, mapping: &Mapping) -> Evaluation {
            if *mapping == self.poison {
                std::thread::sleep(std::time::Duration::from_millis(60));
                panic!("slow poison");
            }
            Evaluation::scalar(1.0)
        }
    }

    #[test]
    fn buffered_results_before_a_panic_never_wedge_the_scheduler() {
        // Reproduce the poisoned job's first proposal: the proposal stream
        // is batch-size independent (the scheduler's contract), so this is
        // the lowest pool id of the job's first chunk — the chunk whose Err
        // lands after the sibling chunk's Oks have buffered.
        let seed = 21;
        let probe = spec(0, 128, seed, 64);
        let mut search = RandomSearch::new();
        let mut rng = StdRng::seed_from_u64(seed);
        search.begin(&*probe.space, Some(probe.budget), &mut rng);
        let mut first = ProposalBuf::new();
        search.propose(&*probe.space, &mut rng, 1, &mut first);
        let mut doomed_spec = spec(0, 128, seed, 64);
        doomed_spec.evaluator = Arc::new(SlowPoison {
            poison: first[0].clone(),
            metrics: vec![OptMetric::Edp],
        });

        let mut pool = EvalPool::shared(2);
        let mut sched = Scheduler::new(2);
        let doomed = sched.enqueue(doomed_spec);
        let healthy = sched.enqueue(spec(1, 160, 5, 32));
        let mut ends: HashMap<u64, JobEnd> = HashMap::new();
        // Before the fix this loop never terminated: the doomed job kept
        // pending entries for results consumed before the Err was routed.
        while !sched.idle() {
            for (job, end) in sched.step(&mut pool).finished {
                ends.insert(job, end);
            }
        }
        assert_eq!(pool.in_flight(), 0, "the doomed job drained completely");
        assert!(
            matches!(&ends[&doomed], JobEnd::Failed(m) if m.contains("slow poison")),
            "the poisoned job fails with the propagated panic payload"
        );
        let JobEnd::Done(outcome) = &ends[&healthy] else {
            panic!("the sibling job must complete, got {:?}", ends[&healthy]);
        };
        assert_eq!(outcome.evaluations, 32);
    }

    #[test]
    fn job_local_sync_stays_deterministic_and_changes_the_search() {
        // Budget spans several JOB_SYNC_INTERVAL cadences so the policy
        // actually fires; SA makes re-anchoring visible.
        let mk = |sync: SyncPolicy| -> Vec<JobSpec> {
            (0..2)
                .map(|i| {
                    let mut s = spec(i, 256, 5 + i, 3 * JOB_SYNC_INTERVAL);
                    s.search = Box::new(SimulatedAnnealing::default());
                    s.sync = sync;
                    s
                })
                .collect()
        };
        let run = |workers: usize, sync: SyncPolicy| -> Vec<f64> {
            let mut pool = EvalPool::shared(workers);
            run_specs(&mut pool, mk(sync), 2)
                .iter()
                .map(|o| o.best.as_ref().unwrap().1.primary())
                .collect()
        };
        let anchored = run(1, SyncPolicy::Anchor);
        assert_eq!(
            anchored,
            run(3, SyncPolicy::Anchor),
            "job-local sync must stay worker-count independent"
        );
        let restarted = run(1, SyncPolicy::Restart { patience: 0 });
        assert_eq!(restarted, run(2, SyncPolicy::Restart { patience: 0 }));
        assert_ne!(
            restarted,
            run(1, SyncPolicy::Off),
            "an always-firing restart policy must steer the search"
        );
    }
}
