//! [`ServeConfig`]: the knobs of a [`MappingService`](crate::MappingService).

use mm_search::SyncPolicy;
use serde::{Deserialize, Serialize};

/// Configuration of a whole-network mapping service.
///
/// The service owns one long-lived evaluation pool of `workers` threads; up
/// to `max_active_jobs` layer searches are multiplexed over it at once, fed
/// from a job queue bounded at `queue_capacity`. Every layer search gets
/// `search_size` evaluations and an RNG stream derived deterministically
/// from `seed` and the layer's fingerprint — so the same seed and the same
/// network always produce the same report, independent of worker count and
/// scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Evaluation-pool worker threads (shared by all layer jobs).
    pub workers: usize,
    /// Layer searches multiplexed over the pool concurrently.
    pub max_active_jobs: usize,
    /// Bound on layer jobs waiting between the network and the active set.
    pub queue_capacity: usize,
    /// Master seed; per-layer streams are derived from it and the layer
    /// fingerprint, so a layer's result does not depend on its position.
    pub seed: u64,
    /// Evaluations spent searching each distinct layer.
    pub search_size: u64,
    /// Map-space shards per layer search: 1 (the default) searches the full
    /// space with one job; `n > 1` routes `n` jobs per distinct layer, each
    /// restricted to a pairwise-disjoint slice of the layer's map space
    /// (`MapSpace::shard`) with an exact `search_size / n` budget split, and
    /// merges their results in shard order. Clamped per layer to the space's
    /// shard capacity. Participates in the result-cache fingerprint, so
    /// cached replays never cross shard configurations.
    pub shards: usize,
    /// How each layer-search job re-anchors on its incumbent best
    /// ([`SyncPolicy::Off`], the default: plain independent search). Serve
    /// sync is **job-local** — at a fixed evaluation cadence a job's own
    /// best-so-far is offered back to its searcher (`Anchor`/`Annealed`
    /// pull a drifting trajectory back to it; `Restart` warm-restarts a
    /// stalled job from it) — so jobs stay independent, determinism is
    /// preserved, and disjoint shard jobs never contaminate each other.
    /// Participates in the result-cache fingerprint, so cached replays
    /// never cross sync configurations.
    pub sync: SyncPolicy,
    /// Shard-aware horizon hints (off by default): begin each shard job's
    /// searcher with the shard-scaled horizon
    /// (`MapSpaceView::horizon_hint`) instead of the raw per-shard budget,
    /// so schedule-based searchers (SA cooling, GA generations) confined to
    /// a slice stop tuning their schedules as if they owned the full layer
    /// space. Participates in the result-cache fingerprint.
    pub shard_horizon: bool,
    /// Reuse results for repeated `(problem, arch, config)` fingerprints —
    /// across layers of one network and across calls on one service.
    pub use_cache: bool,
    /// Bound on distinct results the cache retains (`None`, the default, is
    /// unbounded). When full, the oldest *insert* is evicted (deterministic
    /// FIFO — eviction order never depends on the replay pattern).
    pub cache_capacity: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_active_jobs: 2,
            queue_capacity: 8,
            seed: 0,
            search_size: 2_000,
            shards: 1,
            sync: SyncPolicy::Off,
            shard_horizon: false,
            use_cache: true,
            cache_capacity: None,
        }
    }
}

impl ServeConfig {
    /// A config with the given per-layer evaluation budget.
    pub fn with_search_size(mut self, search_size: u64) -> Self {
        self.search_size = search_size;
        self
    }

    /// A config with the given pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// A config with the given per-layer map-space shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// A config with the given job-local global-best sync policy.
    pub fn with_sync(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }

    /// A config with shard-aware horizon hints switched on or off.
    pub fn with_shard_horizon(mut self, shard_horizon: bool) -> Self {
        self.shard_horizon = shard_horizon;
        self
    }

    /// A config with the given result-cache entry bound (`None` =
    /// unbounded).
    pub fn with_cache_capacity(mut self, cache_capacity: Option<usize>) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane_and_builders_compose() {
        let c = ServeConfig::default();
        assert!(c.workers >= 1 && c.max_active_jobs >= 1 && c.queue_capacity >= 1);
        assert!(c.use_cache);
        assert_eq!(c.shards, 1, "sharding is off by default");
        assert_eq!(c.sync, SyncPolicy::Off, "sync is off by default");
        assert!(!c.shard_horizon, "horizon hints are off by default");
        assert_eq!(c.cache_capacity, None, "cache is unbounded by default");
        let c = c
            .with_search_size(64)
            .with_workers(3)
            .with_shards(4)
            .with_sync(SyncPolicy::Anchor)
            .with_shard_horizon(true)
            .with_cache_capacity(Some(16));
        assert_eq!(c.search_size, 64);
        assert_eq!(c.workers, 3);
        assert_eq!(c.shards, 4);
        assert_eq!(c.sync, SyncPolicy::Anchor);
        assert!(c.shard_horizon);
        assert_eq!(c.cache_capacity, Some(16));
    }
}
