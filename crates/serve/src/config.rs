// mm-lint: identity — RequestConfig renders the fingerprint tag; the determinism rule applies.
//! Service- and request-level knobs of a
//! [`MappingService`](crate::MappingService).
//!
//! PR 9 split the old monolithic `ServeConfig` along the multi-tenant
//! boundary:
//!
//! * [`ServiceConfig`] — properties of the long-lived service itself: the
//!   shared pool size, the concurrency level, the admission-queue depth,
//!   per-tenant budgets, and the result-cache bound. Fixed at construction.
//! * [`RequestConfig`] — properties of one submitted request: search budget
//!   and seed, sharding, sync policy, cache participation, and the
//!   scheduling identity (fair-share weight and tenant). Every
//!   [`submit`](crate::MappingService::submit) carries its own.
//!
//! The deprecated [`ServeConfig`] remains as a conversion shim
//! ([`ServeConfig::split`]) so existing callers keep compiling with a
//! nudge instead of a break.

use mm_mapspace::ShardAxisKind;
use mm_search::SyncPolicy;
use serde::{Deserialize, Serialize};

/// Construction-time configuration of the service: everything shared by all
/// requests (the pool, the scheduler bounds, admission control, the cache).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Evaluation-pool worker threads (shared by all requests' layer jobs).
    pub workers: usize,
    /// Layer-search jobs multiplexed over the pool concurrently, across all
    /// in-flight requests.
    pub max_active_jobs: usize,
    /// Admission bound: requests admitted but not yet completed. A
    /// [`submit`](crate::MappingService::submit) beyond this depth is
    /// rejected with [`AdmissionError::QueueFull`](crate::AdmissionError).
    pub queue_depth: usize,
    /// Per-tenant admission budget: the cap on a tenant's outstanding
    /// *planned* fresh evaluations (summed over its admitted, uncompleted
    /// requests). `None` (the default) disables the check. A submit that
    /// would exceed it is rejected with
    /// [`AdmissionError::TenantBudgetExhausted`](crate::AdmissionError).
    pub tenant_budget: Option<u64>,
    /// Bound on distinct results the cache retains (`None`, the default, is
    /// unbounded). When full, the oldest-*admitted* entry is evicted
    /// (deterministic — eviction order never depends on the replay pattern
    /// or on which of several concurrent searches completed first).
    pub cache_capacity: Option<usize>,
    /// Bound on completed-but-uncollected request results retained for
    /// [`wait`](crate::MappingService::wait) (clamped to ≥ 1). Past the
    /// bound the oldest-admitted uncollected result is dropped — a later
    /// `wait` on its handle returns
    /// [`RequestError::Unknown`](crate::RequestError) — so clients that
    /// abandon handles cannot grow service state without bound.
    pub completed_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            max_active_jobs: 2,
            queue_depth: 8,
            tenant_budget: None,
            cache_capacity: None,
            completed_capacity: 1024,
        }
    }
}

impl ServiceConfig {
    /// A config with the given pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// A config with the given concurrent-job bound.
    pub fn with_max_active_jobs(mut self, max_active_jobs: usize) -> Self {
        self.max_active_jobs = max_active_jobs;
        self
    }

    /// A config with the given admission-queue depth.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// A config with the given per-tenant outstanding-evaluation budget.
    pub fn with_tenant_budget(mut self, tenant_budget: Option<u64>) -> Self {
        self.tenant_budget = tenant_budget;
        self
    }

    /// A config with the given result-cache entry bound (`None` =
    /// unbounded).
    pub fn with_cache_capacity(mut self, cache_capacity: Option<usize>) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }

    /// A config with the given bound on uncollected completed results.
    pub fn with_completed_capacity(mut self, completed_capacity: usize) -> Self {
        self.completed_capacity = completed_capacity;
        self
    }
}

/// Per-request configuration: how one submitted network is searched, and
/// how its jobs compete for the shared pool.
///
/// Everything except `priority` and `tenant` participates in the
/// result-cache fingerprint (it changes what a layer search produces);
/// `priority` and `tenant` are scheduling identity only — they steer *when*
/// jobs run, never *what* they return, so reports stay byte-identical
/// across priorities, tenants, and request interleavings.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestConfig {
    /// Master seed; per-layer streams are derived from it and the layer
    /// fingerprint, so a layer's result does not depend on its position.
    pub seed: u64,
    /// Evaluations spent searching each distinct layer.
    pub search_size: u64,
    /// Map-space shards per layer search: 1 (the default) searches the full
    /// space with one job; `n > 1` routes `n` jobs per distinct layer, each
    /// restricted to a pairwise-disjoint slice of the layer's map space
    /// with an exact `search_size / n` budget split, and merges their
    /// results in shard order. Clamped per layer to the space's shard
    /// capacity.
    pub shards: usize,
    /// Restrict shard partitions to this subset of the axis product
    /// (`None`, the default: the full product — L2 order × L1 order ×
    /// parallelism split × tile prefix). Shard counts clamp to the subset's
    /// capacity. Participates in the fingerprint (appended to the tag only
    /// when set, so legacy configurations keep their fingerprints).
    pub shard_axes: Option<Vec<ShardAxisKind>>,
    /// How each layer-search job re-anchors on its incumbent best
    /// ([`SyncPolicy::Off`], the default: plain independent search). Serve
    /// sync is **job-local** — at a fixed evaluation cadence a job's own
    /// best-so-far is offered back to its searcher — so jobs stay
    /// independent, determinism is preserved, and disjoint shard jobs never
    /// contaminate each other.
    pub sync: SyncPolicy,
    /// Shard-aware horizon hints (off by default): begin each shard job's
    /// searcher with the shard-scaled horizon instead of the raw per-shard
    /// budget.
    pub shard_horizon: bool,
    /// Reuse results for repeated `(problem, arch, config)` fingerprints —
    /// across layers of one request and across requests on one service.
    pub use_cache: bool,
    /// Fair-share weight (1 = baseline, clamped to at least 1): the
    /// scheduler activates pending layer jobs so each request's share of
    /// the pool is proportional to its weight. Scheduling only — results
    /// are weight-independent.
    pub priority: u32,
    /// Tenant identity for admission budgeting and telemetry. Scheduling
    /// only — results are tenant-independent.
    pub tenant: String,
}

impl Default for RequestConfig {
    fn default() -> Self {
        RequestConfig {
            seed: 0,
            search_size: 2_000,
            shards: 1,
            shard_axes: None,
            sync: SyncPolicy::Off,
            shard_horizon: false,
            use_cache: true,
            priority: 1,
            tenant: String::new(),
        }
    }
}

impl RequestConfig {
    /// A config with the given master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A config with the given per-layer evaluation budget.
    pub fn with_search_size(mut self, search_size: u64) -> Self {
        self.search_size = search_size;
        self
    }

    /// A config with the given per-layer map-space shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// A config sharding over the given axis subset (`None` = the full
    /// axis product).
    pub fn with_shard_axes(mut self, shard_axes: Option<Vec<ShardAxisKind>>) -> Self {
        self.shard_axes = shard_axes;
        self
    }

    /// A config with the given job-local global-best sync policy.
    pub fn with_sync(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }

    /// A config with shard-aware horizon hints switched on or off.
    pub fn with_shard_horizon(mut self, shard_horizon: bool) -> Self {
        self.shard_horizon = shard_horizon;
        self
    }

    /// A config with cache participation switched on or off.
    pub fn with_use_cache(mut self, use_cache: bool) -> Self {
        self.use_cache = use_cache;
        self
    }

    /// A config with the given fair-share weight.
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// A config owned by the given tenant.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// The request's portion of the fingerprint tag.
    ///
    /// **Byte-stable:** for configurations expressible by the legacy
    /// `ServeConfig` (no `shard_axes`) this renders exactly the legacy
    /// format, so fingerprints — and therefore derived RNG streams, cached
    /// fixtures, and bench quality baselines — are unchanged by the PR 9
    /// API split. `shard_axes` appends only when set; `priority` and
    /// `tenant` never appear (scheduling identity must not change search
    /// results).
    pub(crate) fn search_tag(&self) -> String {
        use std::fmt::Write;
        let mut tag = format!(
            "seed={} search_size={} shards={} sync={} shard_horizon={}",
            self.seed,
            self.search_size,
            self.shards.max(1),
            self.sync.canonical_string(),
            self.shard_horizon,
        );
        if let Some(axes) = &self.shard_axes {
            let _ = write!(tag, " shard_axes={axes:?}");
        }
        tag
    }
}

/// Legacy monolithic configuration, kept as a conversion shim.
///
/// Split along the multi-tenant boundary by [`ServeConfig::split`]; any
/// `impl Into<ServiceProfile>` — this type included — still constructs a
/// [`MappingService`](crate::MappingService), so existing callers compile
/// with a deprecation nudge instead of a break.
#[deprecated(
    since = "0.9.0",
    note = "split into ServiceConfig (service-level) + RequestConfig (per-request); \
            see ServeConfig::split"
)]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Evaluation-pool worker threads (shared by all layer jobs).
    pub workers: usize,
    /// Layer searches multiplexed over the pool concurrently.
    pub max_active_jobs: usize,
    /// Bound on in-flight requests (was: staged layer jobs).
    pub queue_capacity: usize,
    /// Master seed of every request submitted through the legacy API.
    pub seed: u64,
    /// Evaluations spent searching each distinct layer.
    pub search_size: u64,
    /// Map-space shards per layer search.
    pub shards: usize,
    /// Job-local global-best sync policy.
    pub sync: SyncPolicy,
    /// Shard-aware horizon hints.
    pub shard_horizon: bool,
    /// Reuse results for repeated fingerprints.
    pub use_cache: bool,
    /// Result-cache entry bound (`None` = unbounded).
    pub cache_capacity: Option<usize>,
}

#[allow(deprecated)]
impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_active_jobs: 2,
            queue_capacity: 8,
            seed: 0,
            search_size: 2_000,
            shards: 1,
            sync: SyncPolicy::Off,
            shard_horizon: false,
            use_cache: true,
            cache_capacity: None,
        }
    }
}

#[allow(deprecated)]
impl ServeConfig {
    /// A config with the given per-layer evaluation budget.
    pub fn with_search_size(mut self, search_size: u64) -> Self {
        self.search_size = search_size;
        self
    }

    /// A config with the given pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// A config with the given per-layer map-space shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// A config with the given job-local global-best sync policy.
    pub fn with_sync(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }

    /// A config with shard-aware horizon hints switched on or off.
    pub fn with_shard_horizon(mut self, shard_horizon: bool) -> Self {
        self.shard_horizon = shard_horizon;
        self
    }

    /// A config with the given result-cache entry bound (`None` =
    /// unbounded).
    pub fn with_cache_capacity(mut self, cache_capacity: Option<usize>) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }

    /// Split along the multi-tenant boundary: the service-level knobs and
    /// the per-request knobs this legacy config described.
    pub fn split(self) -> (ServiceConfig, RequestConfig) {
        (
            ServiceConfig {
                workers: self.workers,
                max_active_jobs: self.max_active_jobs,
                queue_depth: self.queue_capacity,
                tenant_budget: None,
                cache_capacity: self.cache_capacity,
                completed_capacity: ServiceConfig::default().completed_capacity,
            },
            RequestConfig {
                seed: self.seed,
                search_size: self.search_size,
                shards: self.shards,
                shard_axes: None,
                sync: self.sync,
                shard_horizon: self.shard_horizon,
                use_cache: self.use_cache,
                priority: 1,
                tenant: String::new(),
            },
        )
    }
}

/// What [`MappingService::new`](crate::MappingService::new) consumes: the
/// service-level config plus the default [`RequestConfig`] used by the
/// legacy synchronous [`map_network`](crate::MappingService::map_network)
/// surface. Build it from a [`ServiceConfig`] (default requests), a
/// `(ServiceConfig, RequestConfig)` pair, or a legacy [`ServeConfig`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServiceProfile {
    /// Service-level configuration.
    pub service: ServiceConfig,
    /// The default per-request configuration (legacy `map_network` calls and
    /// [`RequestConfig::default`]-based submissions).
    pub default_request: RequestConfig,
}

impl From<ServiceConfig> for ServiceProfile {
    fn from(service: ServiceConfig) -> Self {
        ServiceProfile {
            service,
            default_request: RequestConfig::default(),
        }
    }
}

impl From<(ServiceConfig, RequestConfig)> for ServiceProfile {
    fn from((service, default_request): (ServiceConfig, RequestConfig)) -> Self {
        ServiceProfile {
            service,
            default_request,
        }
    }
}

#[allow(deprecated)]
impl From<ServeConfig> for ServiceProfile {
    fn from(config: ServeConfig) -> Self {
        let (service, default_request) = config.split();
        ServiceProfile {
            service,
            default_request,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane_and_builders_compose() {
        let s = ServiceConfig::default();
        assert!(s.workers >= 1 && s.max_active_jobs >= 1 && s.queue_depth >= 1);
        assert_eq!(s.tenant_budget, None, "tenant budgets are off by default");
        assert_eq!(s.cache_capacity, None, "cache is unbounded by default");
        assert!(
            s.completed_capacity >= 1,
            "uncollected results are bounded by default"
        );
        let s = s
            .with_workers(3)
            .with_max_active_jobs(4)
            .with_queue_depth(2)
            .with_tenant_budget(Some(10_000))
            .with_cache_capacity(Some(16))
            .with_completed_capacity(5);
        assert_eq!(
            (s.workers, s.max_active_jobs, s.queue_depth),
            (3, 4, 2),
            "service builders compose"
        );
        assert_eq!(s.tenant_budget, Some(10_000));
        assert_eq!(s.cache_capacity, Some(16));
        assert_eq!(s.completed_capacity, 5);

        let r = RequestConfig::default();
        assert!(r.use_cache);
        assert_eq!(r.shards, 1, "sharding is off by default");
        assert_eq!(r.sync, SyncPolicy::Off, "sync is off by default");
        assert!(!r.shard_horizon, "horizon hints are off by default");
        assert_eq!(r.priority, 1, "baseline fair-share weight");
        let r = r
            .with_seed(9)
            .with_search_size(64)
            .with_shards(4)
            .with_shard_axes(Some(vec![ShardAxisKind::OrderL2]))
            .with_sync(SyncPolicy::Anchor)
            .with_shard_horizon(true)
            .with_use_cache(false)
            .with_priority(3)
            .with_tenant("team-a");
        assert_eq!((r.seed, r.search_size, r.shards), (9, 64, 4));
        assert_eq!(r.shard_axes, Some(vec![ShardAxisKind::OrderL2]));
        assert_eq!(r.sync, SyncPolicy::Anchor);
        assert!(r.shard_horizon && !r.use_cache);
        assert_eq!((r.priority, r.tenant.as_str()), (3, "team-a"));
    }

    #[test]
    fn search_tag_matches_the_legacy_byte_format() {
        // The exact legacy rendering: golden fixtures and bench quality
        // baselines pin fingerprints derived from these bytes.
        let r = RequestConfig::default().with_seed(1).with_search_size(500);
        assert_eq!(
            r.search_tag(),
            "seed=1 search_size=500 shards=1 sync=off shard_horizon=false"
        );
        let r = r
            .with_shards(4)
            .with_sync(SyncPolicy::Anchor)
            .with_shard_horizon(true);
        assert_eq!(
            r.search_tag(),
            format!(
                "seed=1 search_size=500 shards=4 sync={} shard_horizon=true",
                SyncPolicy::Anchor.canonical_string()
            )
        );
    }

    #[test]
    fn scheduling_identity_stays_out_of_the_search_tag() {
        let base = RequestConfig::default();
        let weighted = base.clone().with_priority(7).with_tenant("team-b");
        assert_eq!(
            base.search_tag(),
            weighted.search_tag(),
            "priority/tenant steer scheduling, never results"
        );
        // shard_axes appends (it changes shard coverage), but only when set.
        let restricted = base
            .clone()
            .with_shard_axes(Some(vec![ShardAxisKind::OrderL2, ShardAxisKind::Tile]));
        assert!(restricted
            .search_tag()
            .contains("shard_axes=[OrderL2, Tile]"));
        assert!(!base.search_tag().contains("shard_axes"));
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_config_splits_faithfully() {
        let legacy = ServeConfig {
            workers: 3,
            max_active_jobs: 5,
            queue_capacity: 7,
            seed: 11,
            search_size: 640,
            shards: 2,
            sync: SyncPolicy::Anchor,
            shard_horizon: true,
            use_cache: false,
            cache_capacity: Some(4),
        };
        let (service, request) = legacy.split();
        assert_eq!(
            (
                service.workers,
                service.max_active_jobs,
                service.queue_depth
            ),
            (3, 5, 7)
        );
        assert_eq!(service.cache_capacity, Some(4));
        assert_eq!(
            (request.seed, request.search_size, request.shards),
            (11, 640, 2)
        );
        assert_eq!(request.sync, SyncPolicy::Anchor);
        assert!(request.shard_horizon && !request.use_cache);
        // The profile conversion carries both halves.
        let profile: ServiceProfile = legacy.into();
        assert_eq!(profile.service, service);
        assert_eq!(profile.default_request, request);
    }
}
