// mm-lint: identity — this file feeds canonical output; the determinism rule applies.
//! Per-layer and whole-network serving reports.
//!
//! A [`NetworkReport`] is the service's answer for one network: one
//! [`LayerReport`] per layer (in network order, cache hits included) plus
//! energy/delay/EDP aggregates weighted by repeat counts and wall-clock
//! stats. Everything except the wall-clock fields is deterministic for a
//! fixed seed and network; [`NetworkReport::canonical_string`] renders
//! exactly that deterministic portion, byte-for-byte reproducibly.

use mm_mapper::{Evaluation, MapperReport, OptMetric, ShardReport, StopReason};
use mm_mapspace::Mapping;
use serde::{Deserialize, Serialize};

use crate::cache::{CacheStats, CachedLayer};

/// The serving result for one network layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer name within the network.
    pub layer: String,
    /// Problem name (distinct layers may share one problem).
    pub problem: String,
    /// How many times the network executes this layer.
    pub repeat: u64,
    /// Whether this layer replayed a cached result instead of searching.
    pub cache_hit: bool,
    /// Searcher that produced the result.
    pub searcher: String,
    /// The job-local sync policy the producing search ran under.
    pub sync: mm_search::SyncPolicy,
    /// Evaluations the producing search spent (also reported on cache hits,
    /// describing the original search).
    pub evaluations: u64,
    /// Best mapping found.
    pub best_mapping: Option<Mapping>,
    /// Metrics of the best mapping, in `metric_names` order.
    pub best_metrics: Option<Evaluation>,
    /// The evaluator's metric priority list.
    pub metric_names: Vec<OptMetric>,
    /// Whether the searcher ran out of proposals before the budget.
    pub exhausted: bool,
    /// Wall-clock seconds of the producing search (0 for cache hits).
    pub wall_time_s: f64,
    /// Merged best-so-far convergence of the producing search (present when
    /// telemetry was enabled while it ran; cache hits replay the original
    /// search's curve). Observational — excluded from the canonical string.
    pub convergence: Option<mm_search::ConvergenceTrace>,
}

impl LayerReport {
    pub(crate) fn from_cached(
        layer: &str,
        problem: &str,
        repeat: u64,
        cache_hit: bool,
        cached: &CachedLayer,
    ) -> Self {
        LayerReport {
            layer: layer.to_string(),
            problem: problem.to_string(),
            repeat,
            cache_hit,
            searcher: cached.searcher.clone(),
            sync: cached.sync,
            evaluations: cached.evaluations,
            best_mapping: cached.best_mapping.clone(),
            best_metrics: cached.best_metrics.clone(),
            metric_names: cached.metric_names.clone(),
            exhausted: cached.exhausted,
            wall_time_s: if cache_hit { 0.0 } else { cached.wall_time_s },
            convergence: cached.convergence.clone(),
        }
    }

    /// The value of `metric` for the best mapping, if the evaluator produced
    /// it.
    pub fn metric(&self, metric: OptMetric) -> Option<f64> {
        let pos = self.metric_names.iter().position(|m| *m == metric)?;
        self.best_metrics.as_ref()?.metrics.get(pos).copied()
    }

    /// The layer's EDP: the `edp` metric when present, otherwise the
    /// primary metric (e.g. the surrogate's normalized EDP).
    pub fn edp(&self) -> f64 {
        self.metric(OptMetric::Edp).unwrap_or_else(|| {
            self.best_metrics
                .as_ref()
                .map_or(f64::INFINITY, Evaluation::primary)
        })
    }

    /// Best-mapping energy in picojoules, when the evaluator reported it.
    pub fn energy_pj(&self) -> Option<f64> {
        self.metric(OptMetric::Energy)
    }

    /// Best-mapping delay in seconds, when the evaluator reported it.
    pub fn delay_s(&self) -> Option<f64> {
        self.metric(OptMetric::Delay)
    }

    /// This layer's result in `mm-mapper`'s report vocabulary (a
    /// single-shard [`MapperReport`]), for consumers of that API.
    pub fn as_mapper_report(&self) -> MapperReport {
        let stop = if self.exhausted {
            StopReason::Exhausted
        } else {
            StopReason::SearchSize
        };
        let best = match (&self.best_mapping, &self.best_metrics) {
            (Some(m), Some(e)) => Some((m.clone(), e.clone())),
            _ => None,
        };
        MapperReport {
            best_mapping: self.best_mapping.clone(),
            best_metrics: self.best_metrics.clone(),
            total_evaluations: self.evaluations,
            wall_time_s: self.wall_time_s,
            evals_per_sec: if self.wall_time_s > 0.0 {
                self.evaluations as f64 / self.wall_time_s
            } else {
                0.0
            },
            sync: self.sync,
            shards: vec![ShardReport {
                shard: 0,
                evaluations: self.evaluations,
                best,
                stop,
                trace: None,
                convergence: self.convergence.clone(),
            }],
            telemetry: None,
            convergence: self.convergence.clone(),
        }
    }
}

/// Repeat-weighted totals over a network's layers.
///
/// Energy and delay sum over layer executions; they are `None` unless every
/// layer's evaluator reported the metric. Network EDP is the product of
/// total energy (J) and total delay (s) — the EDP of running the whole
/// network once — while `sum_layer_edp_js` sums per-layer EDPs (the paper's
/// per-layer objective, weighted by repeats).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkAggregate {
    /// Σ repeat × layer energy (pJ), when every layer reported energy.
    pub total_energy_pj: Option<f64>,
    /// Σ repeat × layer delay (s), when every layer reported delay.
    pub total_delay_s: Option<f64>,
    /// Whole-network EDP in J·s: total energy × total delay.
    pub total_edp_js: Option<f64>,
    /// Σ repeat × layer EDP (primary metric when `edp` is absent).
    pub sum_layer_edp_js: f64,
}

impl NetworkAggregate {
    pub(crate) fn from_layers(layers: &[LayerReport]) -> Self {
        let weighted = |f: &dyn Fn(&LayerReport) -> Option<f64>| -> Option<f64> {
            layers
                .iter()
                .map(|l| f(l).map(|v| v * l.repeat as f64))
                .sum::<Option<f64>>()
        };
        let total_energy_pj = weighted(&|l| l.energy_pj());
        let total_delay_s = weighted(&|l| l.delay_s());
        let total_edp_js = match (total_energy_pj, total_delay_s) {
            (Some(e), Some(d)) => Some(e * 1e-12 * d),
            _ => None,
        };
        NetworkAggregate {
            total_energy_pj,
            total_delay_s,
            total_edp_js,
            sum_layer_edp_js: layers.iter().map(|l| l.edp() * l.repeat as f64).sum(),
        }
    }
}

/// The service's result for one whole network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkReport {
    /// Network name.
    pub network: String,
    /// Per-layer results, in network order.
    pub layers: Vec<LayerReport>,
    /// Fresh searches this call ran (distinct uncached fingerprints).
    pub unique_searches: usize,
    /// Layers answered from cache (earlier in this network or a prior call).
    pub cache_hits: usize,
    /// Fresh evaluations this call spent (cache hits cost none).
    pub total_evaluations: u64,
    /// Repeat-weighted energy/delay/EDP totals.
    pub aggregate: NetworkAggregate,
    /// Wall-clock seconds of the whole call.
    pub wall_time_s: f64,
    /// Fresh evaluations per second of the whole call.
    pub evals_per_sec: f64,
    /// Service-assigned request id (monotonic in admission order).
    /// Provenance only — excluded from
    /// [`canonical_string`](NetworkReport::canonical_string), since it
    /// depends on how many sibling requests preceded this one.
    pub request_id: u64,
    /// Tenant named by the request's config (empty for the default tenant).
    /// Provenance only — excluded from
    /// [`canonical_string`](NetworkReport::canonical_string).
    pub tenant: String,
    /// Search units this request attached to a concurrent sibling's
    /// in-flight search instead of running itself. Provenance only —
    /// excluded from [`canonical_string`](NetworkReport::canonical_string),
    /// since sharing depends on what siblings were in flight (the *results*
    /// are byte-identical either way).
    pub shared_searches: u64,
    /// Service result-cache statistics at the end of this call (cumulative
    /// over the service's lifetime). Excluded from [`canonical_string`],
    /// like the wall-clock fields: residency depends on what earlier calls
    /// cached.
    ///
    /// [`canonical_string`]: NetworkReport::canonical_string
    pub cache: CacheStats,
    /// Telemetry snapshot taken as the call finished, when `MM_TELEMETRY`
    /// (or [`mm_telemetry::set_level`]) enables collection; `None` when
    /// telemetry is off. Observational only and excluded from
    /// [`canonical_string`](NetworkReport::canonical_string).
    pub telemetry: Option<mm_telemetry::TelemetrySnapshot>,
}

impl NetworkReport {
    /// Render the deterministic portion of the report — everything except
    /// the wall-clock fields (`wall_time_s`, `evals_per_sec`) — as a stable
    /// string: same seed + same network ⇒ byte-identical output, regardless
    /// of worker count, scheduling, or machine speed.
    pub fn canonical_string(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "network={}", self.network);
        for l in &self.layers {
            let _ = writeln!(
                out,
                "layer={} problem={} repeat={} cache_hit={} searcher={} sync={} evals={} \
                 exhausted={} metric_names={:?} metrics={:?} mapping={:?}",
                l.layer,
                l.problem,
                l.repeat,
                l.cache_hit,
                l.searcher,
                l.sync,
                l.evaluations,
                l.exhausted,
                l.metric_names,
                l.best_metrics.as_ref().map(|e| &e.metrics),
                l.best_mapping,
            );
        }
        let _ = writeln!(
            out,
            "unique_searches={} cache_hits={} total_evaluations={}",
            self.unique_searches, self.cache_hits, self.total_evaluations
        );
        let _ = writeln!(
            out,
            "aggregate energy_pj={:?} delay_s={:?} edp_js={:?} sum_layer_edp_js={:?}",
            self.aggregate.total_energy_pj,
            self.aggregate.total_delay_s,
            self.aggregate.total_edp_js,
            self.aggregate.sum_layer_edp_js,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(name: &str, repeat: u64, edp: f64, energy: f64, delay: f64) -> LayerReport {
        LayerReport {
            layer: name.to_string(),
            problem: name.to_string(),
            repeat,
            cache_hit: false,
            searcher: "Random".into(),
            sync: mm_search::SyncPolicy::Off,
            evaluations: 10,
            best_mapping: None,
            best_metrics: Some(Evaluation {
                metrics: vec![edp, energy, delay],
            }),
            metric_names: vec![OptMetric::Edp, OptMetric::Energy, OptMetric::Delay],
            exhausted: false,
            wall_time_s: 0.5,
            convergence: None,
        }
    }

    #[test]
    fn metric_extraction_and_aggregation() {
        let layers = vec![
            layer("a", 2, 1.0, 100.0, 0.5),
            layer("b", 1, 3.0, 50.0, 1.0),
        ];
        assert_eq!(layers[0].edp(), 1.0);
        assert_eq!(layers[0].energy_pj(), Some(100.0));
        assert_eq!(layers[1].delay_s(), Some(1.0));

        let agg = NetworkAggregate::from_layers(&layers);
        assert_eq!(agg.total_energy_pj, Some(250.0)); // 2×100 + 50
        assert_eq!(agg.total_delay_s, Some(2.0)); // 2×0.5 + 1
        assert_eq!(agg.total_edp_js, Some(250.0 * 1e-12 * 2.0));
        assert_eq!(agg.sum_layer_edp_js, 5.0); // 2×1 + 3
    }

    #[test]
    fn missing_metrics_degrade_gracefully() {
        let mut scalar_only = layer("s", 1, 0.0, 0.0, 0.0);
        scalar_only.metric_names = vec![OptMetric::Edp];
        scalar_only.best_metrics = Some(Evaluation::scalar(7.0));
        assert_eq!(scalar_only.edp(), 7.0);
        assert_eq!(scalar_only.energy_pj(), None);
        let agg = NetworkAggregate::from_layers(&[scalar_only]);
        assert_eq!(agg.total_energy_pj, None);
        assert_eq!(agg.total_edp_js, None);
        assert_eq!(agg.sum_layer_edp_js, 7.0);
    }

    #[test]
    fn mapper_report_view_carries_the_result() {
        let l = layer("a", 1, 2.0, 10.0, 0.1);
        let r = l.as_mapper_report();
        assert_eq!(r.total_evaluations, 10);
        assert_eq!(r.shards.len(), 1);
        assert_eq!(r.shards[0].stop, StopReason::SearchSize);
        assert_eq!(r.best_metrics.as_ref().unwrap().primary(), 2.0);
    }

    #[test]
    fn canonical_string_excludes_wall_clock() {
        let mk = |wall: f64| NetworkReport {
            network: "n".into(),
            layers: vec![layer("a", 1, 2.0, 10.0, 0.1)],
            unique_searches: 1,
            cache_hits: 0,
            total_evaluations: 10,
            aggregate: NetworkAggregate::from_layers(&[layer("a", 1, 2.0, 10.0, 0.1)]),
            wall_time_s: wall,
            evals_per_sec: 10.0 / wall,
            request_id: wall as u64, // also observational-only
            tenant: format!("t{wall}"),
            shared_searches: wall as u64,
            cache: CacheStats {
                hits: wall as u64, // varies with `wall`: must not leak into the canonical form
                ..CacheStats::default()
            },
            telemetry: None,
        };
        let a = mk(0.25);
        let mut b = mk(99.0);
        assert_eq!(a.canonical_string(), b.canonical_string());
        b.layers[0].evaluations = 11;
        assert_ne!(a.canonical_string(), b.canonical_string());
    }
}
