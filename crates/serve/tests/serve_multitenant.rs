//! Multi-tenant front-end tests: interleaving-independent determinism,
//! admission control, cross-request sharing, fair-share priorities, and
//! request-scoped failure isolation over one shared pool.

use std::sync::Arc;

use mm_accel::Architecture;
use mm_mapper::{CostEvaluator, Evaluation, OptMetric};
use mm_mapspace::{Mapping, ProblemSpec};
use mm_serve::{AdmissionError, MappingService, RequestConfig, RequestError, ServiceConfig};
use mm_workloads::{table1_network, Network};

fn service(workers: usize) -> MappingService {
    MappingService::new(
        Architecture::example(),
        ServiceConfig::default()
            .with_workers(workers)
            .with_max_active_jobs(3)
            .with_queue_depth(16),
    )
}

fn request(seed: u64) -> RequestConfig {
    RequestConfig::default()
        .with_seed(seed)
        .with_search_size(96)
}

/// Distinct small networks, so concurrent requests carry disjoint work.
fn nets() -> Vec<Network> {
    vec![
        Network::new("net_a")
            .with_layer("a0", ProblemSpec::conv1d(128, 3), 1)
            .with_layer("a1", ProblemSpec::conv1d(256, 5), 2),
        Network::new("net_b")
            .with_layer("b0", ProblemSpec::conv1d(192, 3), 1)
            .with_layer("b1", ProblemSpec::conv1d(320, 7), 1),
        Network::new("net_c").with_layer("c0", ProblemSpec::conv1d(224, 5), 3),
        Network::new("net_d")
            .with_layer("d0", ProblemSpec::conv1d(160, 7), 1)
            .with_layer("d1", ProblemSpec::conv1d(288, 3), 1),
    ]
}

/// The hard invariant of the multi-tenant front-end: a request's canonical
/// report is byte-identical regardless of submission order, how many
/// siblings are in flight, and the pool's worker count.
#[test]
fn interleaving_and_worker_count_never_change_canonical_reports() {
    let networks = nets();
    // Baseline: each network alone on its own single-worker service.
    let solo: Vec<String> = networks
        .iter()
        .enumerate()
        .map(|(i, net)| {
            let mut s = service(1);
            let handle = s.submit(net, request(7 + i as u64)).unwrap();
            s.wait(handle).unwrap().canonical_string()
        })
        .collect();

    // Deterministic submission-order shuffles (no RNG in tests either).
    let orders: [[usize; 4]; 3] = [[0, 1, 2, 3], [3, 1, 0, 2], [2, 0, 3, 1]];
    for workers in [1usize, 2, 4] {
        for order in &orders {
            let mut s = service(workers);
            let handles: Vec<_> = order
                .iter()
                .map(|&i| (i, s.submit(&networks[i], request(7 + i as u64)).unwrap()))
                .collect();
            for (i, handle) in handles {
                assert_eq!(
                    s.wait(handle).unwrap().canonical_string(),
                    solo[i],
                    "request {i} changed under workers={workers} order={order:?}"
                );
            }
        }
    }
}

/// Concurrent requests for the same shapes share one in-flight search and
/// still each report a fresh, byte-identical search of their own.
#[test]
fn concurrent_same_shape_requests_share_the_inflight_search() {
    let net = Network::new("shared")
        .with_layer("l0", ProblemSpec::conv1d(256, 5), 1)
        .with_layer("l1", ProblemSpec::conv1d(384, 3), 1);

    // Baseline: the same request alone.
    let mut solo = service(2);
    let h = solo.submit(&net, request(5)).unwrap();
    let solo_report = solo.wait(h).unwrap();

    let mut s = service(2);
    let h1 = s.submit(&net, request(5)).unwrap();
    let h2 = s.submit(&net, request(5)).unwrap();
    let r1 = s.wait(h1).unwrap();
    let r2 = s.wait(h2).unwrap();

    assert_eq!(r1.canonical_string(), solo_report.canonical_string());
    assert_eq!(
        r2.canonical_string(),
        solo_report.canonical_string(),
        "the attached request reports the shared search as its own"
    );
    assert_eq!(
        r2.shared_searches, 2,
        "both layers attached to in-flight units"
    );
    assert_eq!(
        s.stats().searches_run,
        2,
        "each distinct shape searched once, not once per request"
    );
    assert_eq!(s.stats().shared_searches, 2);
    // The same shapes submitted *after* completion are persistent-cache hits.
    let h3 = s.submit(&net, request(5)).unwrap();
    let r3 = s.wait(h3).unwrap();
    assert_eq!(r3.cache_hits, 2);
    assert_eq!(r3.total_evaluations, 0);
    for (a, b) in solo_report.layers.iter().zip(&r3.layers) {
        assert_eq!(a.best_mapping, b.best_mapping);
        assert_eq!(a.best_metrics, b.best_metrics);
    }
}

/// One request's persistent-cache insert serves a later request's layers —
/// across tenants and configs that share the search identity.
#[test]
fn cross_request_cache_hits_replay_earlier_results() {
    let shape = ProblemSpec::conv1d(512, 7);
    let mut s = service(2);
    let first = Network::new("first").with_layer("x", shape.clone(), 1);
    let h1 = s.submit(&first, request(3).with_tenant("team-a")).unwrap();
    let r1 = s.wait(h1).unwrap();
    assert_eq!(r1.unique_searches, 1);

    let second = Network::new("second")
        .with_layer("same", shape, 2)
        .with_layer("new", ProblemSpec::conv1d(64, 3), 1);
    let h2 = s.submit(&second, request(3).with_tenant("team-b")).unwrap();
    let r2 = s.wait(h2).unwrap();
    assert_eq!(r2.cache_hits, 1, "team-b replays team-a's cached search");
    assert_eq!(r2.unique_searches, 1, "only the new shape searches");
    assert!(r2.layers[0].cache_hit);
    assert_eq!(r2.layers[0].best_mapping, r1.layers[0].best_mapping);
    assert_eq!(
        (r2.tenant.as_str(), r1.tenant.as_str()),
        ("team-b", "team-a")
    );
}

/// The admission queue is bounded: submits beyond `queue_depth` are rejected
/// with a typed error and change no state.
#[test]
fn queue_full_rejects_with_typed_error() {
    let mut s = MappingService::new(
        Architecture::example(),
        ServiceConfig::default().with_workers(1).with_queue_depth(2),
    );
    let nets = nets();
    let _h0 = s.submit(&nets[0], request(1)).unwrap();
    let _h1 = s.submit(&nets[1], request(2)).unwrap();
    let rejected = s.submit(&nets[2], request(3));
    assert_eq!(
        rejected,
        Err(AdmissionError::QueueFull {
            backlog: 2,
            queue_depth: 2
        })
    );
    assert_eq!(s.stats().requests_rejected, 1);
    assert_eq!(s.in_flight_requests(), 2, "rejection admitted nothing");
    // Draining the queue re-opens admission.
    s.drive();
    assert!(s.submit(&nets[2], request(3)).is_ok());
}

/// Per-tenant budgets cap a tenant's outstanding planned evaluations; other
/// tenants are unaffected, and completion releases the budget.
#[test]
fn tenant_budget_rejects_only_the_overdrawn_tenant() {
    let mut s = MappingService::new(
        Architecture::example(),
        ServiceConfig::default()
            .with_workers(2)
            .with_queue_depth(16)
            .with_tenant_budget(Some(200)),
    );
    let nets = nets();
    // net_a has two distinct shapes → 2 × 96 = 192 planned evaluations.
    let h = s
        .submit(&nets[0], request(1).with_tenant("team-a"))
        .unwrap();
    let overdrawn = s.submit(&nets[1], request(2).with_tenant("team-a"));
    match overdrawn {
        Err(AdmissionError::TenantBudgetExhausted {
            tenant,
            outstanding,
            budget,
            ..
        }) => {
            assert_eq!(tenant, "team-a");
            assert_eq!(outstanding, 192);
            assert_eq!(budget, 200);
        }
        other => panic!("expected a tenant-budget rejection, got {other:?}"),
    }
    // A different tenant admits fine against the same service.
    let hb = s
        .submit(&nets[1], request(2).with_tenant("team-b"))
        .unwrap();
    s.wait(h).unwrap();
    s.wait(hb).unwrap();
    // team-a's budget was released on completion.
    assert!(s.submit(&nets[2], request(3).with_tenant("team-a")).is_ok());
}

/// Priorities steer scheduling only: a high-priority sibling never changes
/// what a low-priority request reports.
#[test]
fn priorities_change_scheduling_not_results() {
    let networks = nets();
    let mut baseline = service(1);
    let h = baseline.submit(&networks[0], request(9)).unwrap();
    let solo = baseline.wait(h).unwrap().canonical_string();

    let mut s = service(2);
    let low = s.submit(&networks[0], request(9).with_priority(1)).unwrap();
    let hi = s
        .submit(&networks[1], request(10).with_priority(8))
        .unwrap();
    assert_eq!(s.wait(low).unwrap().canonical_string(), solo);
    s.wait(hi).unwrap();
}

/// Evaluator that panics when built for the poisoned problem (selected at
/// factory time) and scores everything else with a constant.
struct Sabotaged {
    poisoned: bool,
    metrics: Vec<OptMetric>,
}

impl CostEvaluator for Sabotaged {
    fn metrics(&self) -> &[OptMetric] {
        &self.metrics
    }
    fn evaluate(&self, _mapping: &Mapping) -> Evaluation {
        if self.poisoned {
            panic!("sabotaged evaluator");
        }
        Evaluation::scalar(1.0)
    }
}

/// A panicking evaluator fails only its own request: the sibling sharing the
/// pool completes with bytes identical to an undisturbed run, and the
/// service keeps serving afterwards.
#[test]
fn panicking_evaluator_fails_only_its_request() {
    let poison_problem = ProblemSpec::conv1d(96, 3);
    let mk = || {
        let poison = poison_problem.clone();
        MappingService::with_evaluator_factory(
            Architecture::example(),
            ServiceConfig::default().with_workers(2).with_queue_depth(8),
            Box::new(move |_, problem| {
                Arc::new(Sabotaged {
                    poisoned: *problem == poison,
                    metrics: vec![OptMetric::Edp],
                }) as Arc<dyn CostEvaluator>
            }),
            "sabotaged[test]".to_string(),
        )
    };
    let healthy_net = Network::new("healthy")
        .with_layer("h0", ProblemSpec::conv1d(128, 3), 1)
        .with_layer("h1", ProblemSpec::conv1d(256, 5), 1);
    let doomed_net = Network::new("doomed")
        .with_layer("ok", ProblemSpec::conv1d(192, 5), 1)
        .with_layer("poison", poison_problem.clone(), 1);

    // Baseline: the healthy request alone on an identical service.
    let mut alone = mk();
    let h = alone.submit(&healthy_net, request(4)).unwrap();
    let solo = alone.wait(h).unwrap().canonical_string();

    let mut s = mk();
    let doomed = s.submit(&doomed_net, request(4)).unwrap();
    let healthy = s.submit(&healthy_net, request(4)).unwrap();
    let err = s.wait(doomed).unwrap_err();
    match err {
        RequestError::Failed { message, .. } => {
            assert!(
                message.contains("sabotaged evaluator"),
                "panic payload propagates: {message}"
            );
        }
        other => panic!("expected a Failed error, got {other:?}"),
    }
    assert_eq!(
        s.wait(healthy).unwrap().canonical_string(),
        solo,
        "the sibling must complete byte-identically to an undisturbed run"
    );
    assert_eq!(s.stats().requests_failed, 1);

    // The pool survived the panic: the same service serves fresh requests.
    let again = s.submit(&healthy_net, request(11)).unwrap();
    assert!(s.wait(again).is_ok());
}

/// With the cache disabled no lookups happen, so none are recorded: the
/// hit/miss statistics count only lookups the service actually performed.
#[test]
fn cache_off_requests_record_no_lookups() {
    let mut s = service(1);
    let net = &nets()[0];
    let h = s.submit(net, request(2).with_use_cache(false)).unwrap();
    let r = s.wait(h).unwrap();
    assert_eq!(
        (r.cache.hits, r.cache.misses),
        (0, 0),
        "cache-off planning must not count phantom lookups"
    );
    assert_eq!(r.cache.inserts, 0, "cache-off results are not inserted");
    // The same request with the cache on records one miss per layer
    // occurrence it checked.
    let h = s.submit(net, request(2)).unwrap();
    let r = s.wait(h).unwrap();
    assert_eq!(r.cache.misses, net.len() as u64);
}

/// Uncollected results are bounded: past `completed_capacity` the
/// oldest-admitted result is dropped, so clients that abandon handles
/// cannot grow service state forever.
#[test]
fn uncollected_reports_expire_past_completed_capacity() {
    let mut s = MappingService::new(
        Architecture::example(),
        ServiceConfig::default()
            .with_workers(1)
            .with_queue_depth(8)
            .with_completed_capacity(2),
    );
    let networks = nets();
    let handles: Vec<_> = (0..3)
        .map(|i| {
            s.submit(&networks[i], request(1 + i as u64).with_search_size(48))
                .unwrap()
        })
        .collect();
    s.drive();
    // Three results completed against a capacity of two: the
    // oldest-admitted handle's report was dropped, the rest are intact.
    assert_eq!(
        s.wait(handles[0]),
        Err(RequestError::Unknown {
            request: handles[0].id()
        })
    );
    assert!(s.wait(handles[1]).is_ok());
    assert!(s.wait(handles[2]).is_ok());
}

/// A bounded cache stays deterministic under concurrency: eviction follows
/// unit admission order rather than completion order, so which shapes a
/// follow-up request replays — and its whole report — is identical across
/// pool shapes even with many units completing in flight.
#[test]
fn bounded_cache_eviction_is_deterministic_under_concurrency() {
    let networks = nets(); // 7 distinct shapes across 4 networks
    let run = |workers: usize| {
        let mut s = MappingService::new(
            Architecture::example(),
            ServiceConfig::default()
                .with_workers(workers)
                .with_max_active_jobs(3)
                .with_queue_depth(16)
                .with_cache_capacity(Some(3)),
        );
        let handles: Vec<_> = networks
            .iter()
            .enumerate()
            .map(|(i, net)| s.submit(net, request(30 + i as u64)).unwrap())
            .collect();
        for h in handles {
            s.wait(h).unwrap();
        }
        // Probe (youngest admissions first, so some probes land on the
        // surviving residents): which shapes outlived the capacity bound
        // decides each probe's hit set, evaluation spend, and provenance.
        networks
            .iter()
            .enumerate()
            .rev()
            .map(|(i, net)| {
                let h = s.submit(net, request(30 + i as u64)).unwrap();
                let r = s.wait(h).unwrap();
                (r.cache_hits, r.cache.evictions, r.canonical_string())
            })
            .collect::<Vec<_>>()
    };
    let base = run(1);
    assert!(
        base.iter().any(|(_, evictions, _)| *evictions > 0),
        "the capacity bound must actually bite"
    );
    assert!(base.iter().any(|(hits, _, _)| *hits > 0));
    assert_eq!(base, run(2), "independent of pool width");
    assert_eq!(base, run(4));
}

/// Waiting twice on a collected handle (or on a foreign handle) is a typed
/// error, not a hang.
#[test]
fn unknown_handles_are_typed_errors() {
    let mut s = service(1);
    let net = Network::new("once").with_layer("l", ProblemSpec::conv1d(128, 3), 1);
    let h = s.submit(&net, request(1)).unwrap();
    assert!(s.wait(h).is_ok());
    assert_eq!(s.wait(h), Err(RequestError::Unknown { request: h.id() }));
}

/// A larger smoke: four table1-class requests with distinct seeds all
/// complete over one pool, with reports matching their solo baselines.
#[test]
fn four_concurrent_table1_requests_match_solo_baselines() {
    let net = table1_network();
    let solo: Vec<String> = (0..4)
        .map(|i| {
            let mut s = service(1);
            let h = s
                .submit(&net, request(20 + i).with_search_size(60))
                .unwrap();
            s.wait(h).unwrap().canonical_string()
        })
        .collect();
    let mut s = service(4);
    let handles: Vec<_> = (0..4)
        .map(|i| {
            s.submit(&net, request(20 + i).with_search_size(60))
                .unwrap()
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        assert_eq!(s.wait(h).unwrap().canonical_string(), solo[i]);
    }
    assert_eq!(s.stats().requests_completed, 4);
}
