//! Integration tests for the whole-network mapping service: full Table 1
//! serving over one shared pool, byte-identical determinism, cache-replay
//! semantics, and the batched surrogate evaluation path.

use std::sync::Arc;

use mm_accel::Architecture;
use mm_core::Phase1Config;
use mm_mapspace::ProblemSpec;
use mm_search::SimulatedAnnealing;
use mm_serve::{MappingService, RequestConfig, ServiceConfig, SurrogateEvaluator, SyncPolicy};
use mm_workloads::{evaluated_accelerator, table1_network, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_service() -> ServiceConfig {
    ServiceConfig::default()
        .with_workers(2)
        .with_max_active_jobs(2)
        .with_queue_depth(4)
}

fn quick_request() -> RequestConfig {
    RequestConfig::default().with_seed(42).with_search_size(120)
}

fn quick_profile() -> (ServiceConfig, RequestConfig) {
    (quick_service(), quick_request())
}

#[test]
fn maps_full_table1_over_one_shared_pool() {
    let net = table1_network();
    let mut service = MappingService::new(evaluated_accelerator(), quick_profile());
    let report = service.map_network(&net);

    assert_eq!(report.layers.len(), 8);
    assert_eq!(report.unique_searches, 8, "all eight shapes are distinct");
    assert_eq!(report.cache_hits, 0);
    assert_eq!(report.total_evaluations, 8 * 120);
    for layer in &report.layers {
        assert!(!layer.cache_hit);
        assert_eq!(layer.evaluations, 120);
        assert!(
            layer.best_mapping.is_some(),
            "layer {} found a mapping",
            layer.layer
        );
        assert!(layer.edp().is_finite() && layer.edp() > 0.0);
        assert!(layer.energy_pj().unwrap() > 0.0);
        assert!(layer.delay_s().unwrap() > 0.0);
        // The MapperReport view carries the same result.
        let mr = layer.as_mapper_report();
        assert_eq!(mr.total_evaluations, 120);
        assert_eq!(mr.best_metrics, layer.best_metrics);
    }
    // Aggregates are repeat-weighted sums of the per-layer metrics.
    let energy: f64 = report.layers.iter().map(|l| l.energy_pj().unwrap()).sum();
    let delay: f64 = report.layers.iter().map(|l| l.delay_s().unwrap()).sum();
    assert_eq!(report.aggregate.total_energy_pj, Some(energy));
    assert_eq!(report.aggregate.total_delay_s, Some(delay));
    assert_eq!(report.aggregate.total_edp_js, Some(energy * 1e-12 * delay));
    assert_eq!(service.stats().searches_run, 8);
    assert_eq!(service.cached_results(), 8);
}

#[test]
fn same_seed_same_network_is_byte_identical() {
    let net = table1_network();
    let run = |workers: usize, max_active: usize| {
        let service_cfg = quick_service()
            .with_workers(workers)
            .with_max_active_jobs(max_active);
        let mut service =
            MappingService::new(evaluated_accelerator(), (service_cfg, quick_request()));
        service.map_network(&net).canonical_string()
    };
    let base = run(2, 2);
    assert_eq!(base, run(2, 2), "replay is byte-identical");
    assert_eq!(base, run(1, 1), "independent of concurrency");
    assert_eq!(base, run(4, 3), "independent of pool width");

    // A different seed must actually change the result.
    let mut service = MappingService::new(
        evaluated_accelerator(),
        (quick_service(), quick_request().with_seed(43)),
    );
    assert_ne!(base, service.map_network(&net).canonical_string());
}

#[test]
fn repeated_layers_hit_the_cache_with_identical_mappings() {
    let shape = ProblemSpec::conv1d(512, 7);
    let net = Network::new("repeats")
        .with_layer("block1", shape.clone(), 1)
        .with_layer("block2", shape.clone(), 3)
        .with_layer("other", ProblemSpec::conv1d(256, 5), 1)
        .with_layer("block3", shape.clone(), 1);

    let mut service = MappingService::new(Architecture::example(), quick_profile());
    let report = service.map_network(&net);

    assert_eq!(report.unique_searches, 2, "two distinct shapes");
    assert_eq!(report.cache_hits, 2, "block2 and block3 replay block1");
    assert_eq!(report.total_evaluations, 2 * 120, "repeats cost nothing");
    assert!(!report.layers[0].cache_hit);
    assert!(report.layers[1].cache_hit && report.layers[3].cache_hit);
    assert_eq!(
        report.layers[0].best_mapping, report.layers[1].best_mapping,
        "cache hits return the identical mapping"
    );
    assert_eq!(report.layers[0].best_metrics, report.layers[3].best_metrics);

    // A second call on the long-lived service is answered fully from cache,
    // with zero fresh evaluations and the identical deterministic report.
    let again = service.map_network(&net);
    assert_eq!(again.unique_searches, 0);
    assert_eq!(again.cache_hits, 4);
    assert_eq!(again.total_evaluations, 0);
    for (a, b) in report.layers.iter().zip(&again.layers) {
        assert_eq!(a.best_mapping, b.best_mapping);
        assert_eq!(a.best_metrics, b.best_metrics);
    }
    assert_eq!(service.stats().searches_run, 2);
    assert_eq!(service.stats().cache_hits, 2 + 4);
}

#[test]
fn cache_off_searches_every_occurrence_but_keeps_the_report() {
    let shape = ProblemSpec::conv1d(300, 5);
    let net = Network::new("dup")
        .with_layer("a", shape.clone(), 1)
        .with_layer("b", shape.clone(), 1);

    let mut with_cache = MappingService::new(Architecture::example(), quick_profile());
    let mut without_cache = MappingService::new(
        Architecture::example(),
        (quick_service(), quick_request().with_use_cache(false)),
    );
    let hit = with_cache.map_network(&net);
    let miss = without_cache.map_network(&net);

    assert_eq!(hit.unique_searches, 1);
    assert_eq!(
        miss.unique_searches, 2,
        "cache off: every occurrence searches"
    );
    assert_eq!(miss.cache_hits, 0);
    assert_eq!(miss.total_evaluations, 2 * hit.total_evaluations);
    // Same fingerprint ⇒ same derived seed ⇒ identical results either way.
    for (a, b) in hit.layers.iter().zip(&miss.layers) {
        assert_eq!(a.best_mapping, b.best_mapping);
        assert_eq!(a.best_metrics, b.best_metrics);
        assert!(!b.cache_hit);
    }
}

#[test]
fn searcher_choice_changes_the_fingerprint_and_result_path() {
    let net = Network::new("one").with_layer("l", ProblemSpec::conv1d(400, 5), 1);
    let mut random = MappingService::new(Architecture::example(), quick_profile());
    let mut annealed = MappingService::new(Architecture::example(), quick_profile())
        .with_searcher(Box::new(|| Box::new(SimulatedAnnealing::default())));

    let r = random.map_network(&net);
    let a = annealed.map_network(&net);
    assert_eq!(r.layers[0].searcher, "Random");
    assert_eq!(a.layers[0].searcher, "SA");
    assert_eq!(r.total_evaluations, a.total_evaluations);
    assert!(a.layers[0].edp().is_finite());

    // Swapping the searcher on a warm service drops the cache: fingerprints
    // identify searchers by name only, so results from a differently
    // configured same-name searcher must never replay.
    assert_eq!(random.cached_results(), 1);
    let mut swapped = random.with_searcher(Box::new(|| Box::new(SimulatedAnnealing::default())));
    assert_eq!(swapped.cached_results(), 0);
    let fresh = swapped.map_network(&net);
    assert_eq!(fresh.unique_searches, 1, "re-searches after the swap");
    assert_eq!(fresh.layers[0].searcher, "SA");
    assert_eq!(
        fresh.layers[0].best_metrics, a.layers[0].best_metrics,
        "and reproduces the SA service's result exactly"
    );
}

#[test]
fn map_problem_is_a_one_layer_network() {
    let mut service = MappingService::new(Architecture::example(), quick_profile());
    let layer = service.map_problem("solo", ProblemSpec::conv1d(200, 3));
    assert_eq!(layer.layer, "solo");
    assert_eq!(layer.evaluations, 120);
    assert!(layer.best_mapping.is_some());
    // The same problem through map_network now hits the cache.
    let net = Network::new("again").with_layer("same", ProblemSpec::conv1d(200, 3), 1);
    let report = service.map_network(&net);
    assert_eq!(report.cache_hits, 1);
    assert_eq!(report.layers[0].best_mapping, layer.best_mapping);
}

#[test]
fn batched_surrogate_serving_path() {
    // Train one quick conv1d surrogate and serve a conv1d network through
    // it: every pool batch is answered by a single forward pass
    // (SurrogateEvaluator::evaluate_batch), and the serve path stays
    // deterministic.
    let arch = Architecture::example();
    let mut rng = StdRng::seed_from_u64(9);
    let dataset = mm_core::generate_training_set(
        &arch,
        &mm_workloads::conv1d::Conv1dFamily::default(),
        400,
        40,
        &mut rng,
    )
    .unwrap();
    let config = Phase1Config {
        hidden_layers: vec![24, 24],
        epochs: 6,
        ..Phase1Config::quick()
    };
    let (surrogate, _) =
        mm_core::Surrogate::train(arch.clone(), &dataset, &config, &mut rng).unwrap();

    let net = Network::new("surrogate-net")
        .with_layer("u0", ProblemSpec::conv1d(700, 5), 1)
        .with_layer("u1", ProblemSpec::conv1d(900, 7), 2)
        .with_layer("u0_again", ProblemSpec::conv1d(700, 5), 1);

    let mk = |surrogate: mm_core::Surrogate| {
        MappingService::with_evaluator_factory(
            arch.clone(),
            quick_profile(),
            Box::new(move |_, problem| {
                Arc::new(
                    SurrogateEvaluator::new(surrogate.clone(), problem.clone())
                        .expect("conv1d family"),
                )
            }),
            "surrogate[normalized-edp]".to_string(),
        )
    };
    let mut service = mk(surrogate.clone());
    let report = service.map_network(&net);

    assert_eq!(report.unique_searches, 2);
    assert_eq!(report.cache_hits, 1);
    for layer in &report.layers {
        assert!(layer.edp().is_finite() && layer.edp() > 0.0);
        // The surrogate reports only its (normalized-EDP) primary metric…
        assert_eq!(layer.energy_pj(), None);
    }
    // …so network energy/delay aggregates are unavailable on this path.
    assert_eq!(report.aggregate.total_energy_pj, None);
    assert!(report.aggregate.sum_layer_edp_js > 0.0);

    // Determinism holds on the surrogate path too.
    let mut replay = mk(surrogate);
    assert_eq!(
        report.canonical_string(),
        replay.map_network(&net).canonical_string()
    );
}

#[test]
fn empty_network_yields_an_empty_report() {
    let mut service = MappingService::new(Architecture::example(), quick_profile());
    let report = service.map_network(&Network::new("empty"));
    assert!(report.layers.is_empty());
    assert_eq!(report.unique_searches, 0);
    assert_eq!(report.total_evaluations, 0);
}

/// Sharded layer searches split the budget exactly, stay deterministic, and
/// their cache replays byte-identically — per shard configuration.
#[test]
fn sharded_layer_searches_are_deterministic_and_budget_exact() {
    let net = table1_network();
    let profile = (quick_service(), quick_request().with_shards(3));
    let mut a = MappingService::new(evaluated_accelerator(), profile.clone());
    let report_a = a.map_network(&net);
    assert_eq!(report_a.unique_searches, 8);
    assert_eq!(
        report_a.total_evaluations,
        8 * 120,
        "shard budget shares must sum to search_size per layer"
    );
    for layer in &report_a.layers {
        assert_eq!(layer.evaluations, 120);
        assert!(layer.best_mapping.is_some());
    }

    // Same seed + same shard config ⇒ byte-identical report on a fresh
    // service, and a byte-identical cached replay on the same service.
    let mut b = MappingService::new(evaluated_accelerator(), profile);
    assert_eq!(
        report_a.canonical_string(),
        b.map_network(&net).canonical_string()
    );
    let replay = a.map_network(&net);
    assert_eq!(replay.cache_hits, 8);
    assert_eq!(replay.total_evaluations, 0, "replay searches nothing");
    for (fresh, cached) in report_a.layers.iter().zip(&replay.layers) {
        assert!(cached.cache_hit);
        assert_eq!(fresh.best_mapping, cached.best_mapping);
        assert_eq!(fresh.best_metrics, cached.best_metrics);
        assert_eq!(fresh.evaluations, cached.evaluations);
    }
}

/// Different shard counts are different search configurations: they produce
/// (almost surely) different best mappings, and — because the shard count is
/// folded into the result-cache fingerprint — a service never replays a
/// cached result across shard configurations.
#[test]
fn shard_config_changes_results_not_cache_replays() {
    let problem = ProblemSpec::conv1d(768, 7);
    let run = |shards: usize| {
        let mut service = MappingService::new(
            evaluated_accelerator(),
            (quick_service(), quick_request().with_shards(shards)),
        );
        service.map_problem("conv", problem.clone())
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.evaluations, four.evaluations);
    assert_ne!(
        one.best_mapping, four.best_mapping,
        "distinct shard configs should explore differently"
    );
}

/// The shard-horizon hint is a search-configuration knob like shards/sync:
/// it changes what a sharded SA job finds (shorter cooling schedule), and —
/// folded into the result-cache fingerprint — hinted and un-hinted runs
/// never share cache entries, even on one service via reconfiguration.
#[test]
fn shard_horizon_hint_is_a_distinct_search_configuration() {
    let problem = ProblemSpec::conv1d(768, 7);
    let run = |shard_horizon: bool| {
        let request = quick_request()
            .with_shards(4)
            .with_shard_horizon(shard_horizon)
            .with_search_size(400);
        let mut service = MappingService::new(evaluated_accelerator(), (quick_service(), request))
            .with_searcher(Box::new(|| Box::new(SimulatedAnnealing::default())));
        service.map_problem("conv", problem.clone())
    };
    let plain = run(false);
    let hinted = run(true);
    assert_eq!(
        plain.evaluations, hinted.evaluations,
        "hints cost no budget"
    );
    assert_ne!(
        plain.best_mapping, hinted.best_mapping,
        "the hint must change the sharded SA schedule"
    );
}

/// Two configurations differing *only* in the sync policy never share
/// cache entries: the policy is folded into the result-cache fingerprint,
/// so each policy derives its own RNG streams and produces its own result.
#[test]
fn sync_policy_configs_never_share_cache_entries() {
    let problem = ProblemSpec::conv1d(768, 7);
    let run = |sync: SyncPolicy| {
        let request = quick_request().with_sync(sync).with_search_size(400);
        let mut service = MappingService::new(evaluated_accelerator(), (quick_service(), request))
            .with_searcher(Box::new(|| Box::new(SimulatedAnnealing::default())));
        service.map_problem("conv", problem.clone())
    };
    let off = run(SyncPolicy::Off);
    let anchored = run(SyncPolicy::Anchor);
    let restarted = run(SyncPolicy::Restart { patience: 0 });
    assert_eq!(off.evaluations, anchored.evaluations);
    assert_ne!(
        off.best_mapping, anchored.best_mapping,
        "distinct sync configs must not replay each other's results"
    );
    assert_ne!(anchored.best_mapping, restarted.best_mapping);

    // And on one long-lived service, a cached replay reproduces the
    // policy-specific result exactly (never a cross-policy entry).
    let request = quick_request()
        .with_sync(SyncPolicy::Anchor)
        .with_search_size(400);
    let mut service = MappingService::new(evaluated_accelerator(), (quick_service(), request))
        .with_searcher(Box::new(|| Box::new(SimulatedAnnealing::default())));
    let fresh = service.map_problem("conv", problem.clone());
    let replay = service.map_problem("conv", problem.clone());
    assert!(replay.cache_hit);
    assert_eq!(fresh.best_mapping, anchored.best_mapping);
    assert_eq!(replay.best_mapping, anchored.best_mapping);
}

/// The serve determinism guarantee survives an enabled sync policy: the
/// policy is job-local, so reports stay byte-identical across pool shapes.
#[test]
fn synced_serving_is_byte_identical_across_pool_shapes() {
    let net = table1_network();
    let run = |workers: usize, max_active: usize| {
        let service_cfg = quick_service()
            .with_workers(workers)
            .with_max_active_jobs(max_active);
        let request = quick_request()
            .with_sync(SyncPolicy::Restart { patience: 1 })
            .with_search_size(200);
        let mut service = MappingService::new(evaluated_accelerator(), (service_cfg, request))
            .with_searcher(Box::new(|| Box::new(SimulatedAnnealing::default())));
        service.map_network(&net).canonical_string()
    };
    let base = run(2, 2);
    assert_eq!(base, run(1, 1), "independent of concurrency");
    assert_eq!(base, run(4, 3), "independent of pool width");
}

/// The deprecated `ServeConfig` still constructs a service and maps through
/// the legacy synchronous surface, producing the same bytes as the split
/// configs it converts into.
#[test]
#[allow(deprecated)]
fn legacy_serve_config_still_serves_identically() {
    let net = Network::new("legacy").with_layer("l", ProblemSpec::conv1d(300, 5), 2);
    let legacy = mm_serve::ServeConfig::default()
        .with_search_size(120)
        .with_workers(2);
    let mut old_style = MappingService::new(Architecture::example(), legacy);
    let via_legacy = old_style.map_network(&net).canonical_string();

    let (service_cfg, request) = legacy.split();
    let mut new_style = MappingService::new(Architecture::example(), (service_cfg, request));
    assert_eq!(via_legacy, new_style.map_network(&net).canonical_string());
}
