//! Integration tests of the parallel mapper's headline guarantees:
//!
//! * **Determinism** — same seed + same thread count ⇒ identical best
//!   mapping (under deterministic termination policies);
//! * **Equivalence** — an N-threaded run strictly contains a 1-threaded run
//!   with the same seed and per-thread budget (thread 0's stream is
//!   identical), so the N-threaded best can never be worse;
//! * **Orchestration breadth** — every searcher kind (stepwise SA/GA/
//!   random, thread-bridged DDPG, the mm-core gradient proposer) runs under
//!   the same driver.

use std::sync::Arc;

use mm_accel::{Architecture, CostModel};
use mm_mapper::{
    BridgedSearcher, Mapper, MapperConfig, ModelEvaluator, OptMetric, StopReason, SyncPolicy,
    TerminationPolicy,
};
use mm_mapspace::{MapSpace, ProblemSpec};
use mm_search::{
    AnnealingConfig, DdpgAgent, DdpgConfig, GeneticAlgorithm, GeneticConfig, ProposalSearch,
    RandomSearch, SimulatedAnnealing,
};

fn setup() -> (MapSpace, Arc<dyn mm_mapper::CostEvaluator>) {
    let arch = Architecture::example();
    let problem = ProblemSpec::conv1d(768, 7);
    let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
    let model = CostModel::new(arch, problem);
    (space, Arc::new(ModelEvaluator::edp(model)))
}

fn sa_factory(_thread: usize) -> Box<dyn ProposalSearch> {
    Box::new(SimulatedAnnealing::new(AnnealingConfig::default()))
}

/// Same seed + same thread count ⇒ byte-identical best mapping and metrics,
/// for a stateful searcher, across repeated runs.
#[test]
fn same_seed_same_threads_is_deterministic() {
    let (space, evaluator) = setup();
    let config = MapperConfig {
        threads: 4,
        seed: 42,
        sync_interval: 32,
        termination: TerminationPolicy::search_size(1200),
        ..MapperConfig::default()
    };
    let run = |cfg: &MapperConfig| {
        Mapper::new(cfg.clone()).run(&space, Arc::clone(&evaluator), sa_factory)
    };
    let a = run(&config);
    let b = run(&config);
    assert_eq!(a.total_evaluations, 1200);
    assert_eq!(
        a.best_mapping, b.best_mapping,
        "best mapping must be stable"
    );
    assert_eq!(a.best_metrics, b.best_metrics);
    assert_eq!(a.total_evaluations, b.total_evaluations);
    for (ta, tb) in a.shards.iter().zip(&b.shards) {
        assert_eq!(ta.evaluations, tb.evaluations);
        assert_eq!(
            ta.best.as_ref().map(|(m, _)| m),
            tb.best.as_ref().map(|(m, _)| m)
        );
    }

    // A different seed explores differently (overwhelmingly likely).
    let other = run(&MapperConfig {
        seed: 43,
        ..config.clone()
    });
    assert_ne!(
        a.best_mapping, other.best_mapping,
        "different seeds should find different best mappings"
    );
}

/// Victory-condition runs are thread-local and therefore also
/// deterministic.
#[test]
fn victory_condition_runs_are_deterministic() {
    let (space, evaluator) = setup();
    let config = MapperConfig {
        threads: 2,
        seed: 9,
        termination: TerminationPolicy::search_size(50_000).with_victory_condition(40),
        ..MapperConfig::default()
    };
    let a = Mapper::new(config.clone()).run(&space, Arc::clone(&evaluator), |_| {
        Box::new(RandomSearch::new())
    });
    let b = Mapper::new(config).run(&space, Arc::clone(&evaluator), |_| {
        Box::new(RandomSearch::new())
    });
    assert_eq!(a.total_evaluations, b.total_evaluations);
    assert_eq!(a.best_mapping, b.best_mapping);
    assert!(a.shards.iter().all(|t| t.stop == StopReason::Victory));
}

/// With the same seed and the same per-thread budget, thread 0 of the
/// N-threaded run replays the 1-threaded run exactly; extra threads only
/// add exploration. So the N-threaded best is never worse under an
/// iso-per-thread evaluation budget.
#[test]
fn more_threads_never_worse_at_iso_per_thread_budget() {
    let (space, evaluator) = setup();
    const PER_THREAD: u64 = 400;
    for (searcher_name, factory) in [
        ("SA", sa_factory as fn(usize) -> Box<dyn ProposalSearch>),
        ("Random", |_| Box::new(RandomSearch::new())),
        ("GA", |_| {
            Box::new(GeneticAlgorithm::new(GeneticConfig {
                population: 20,
                ..GeneticConfig::default()
            }))
        }),
    ] {
        let run = |threads: u64| {
            Mapper::new(MapperConfig {
                threads: threads as usize,
                seed: 7,
                termination: TerminationPolicy::search_size(PER_THREAD * threads),
                ..MapperConfig::default()
            })
            .run(&space, Arc::clone(&evaluator), factory)
        };
        let single = run(1);
        let multi = run(4);
        assert_eq!(single.total_evaluations, PER_THREAD);
        assert_eq!(multi.total_evaluations, 4 * PER_THREAD);
        // Thread 0 of the multi run replicates the single run.
        assert_eq!(
            multi.shards[0].best.as_ref().map(|(m, _)| m),
            single.shards[0].best.as_ref().map(|(m, _)| m),
            "{searcher_name}: thread 0 must replay the single-threaded run"
        );
        assert!(
            multi.best_cost() <= single.best_cost(),
            "{searcher_name}: 4-threaded best {} worse than single-threaded {}",
            multi.best_cost(),
            single.best_cost()
        );
    }
}

/// The thread-bridged DDPG agent runs under the same parallel driver.
#[test]
fn bridged_ddpg_runs_under_the_mapper() {
    let (space, evaluator) = setup();
    let mapper = Mapper::new(MapperConfig {
        threads: 2,
        seed: 3,
        termination: TerminationPolicy::search_size(120),
        ..MapperConfig::default()
    });
    let report = mapper.run(&space, evaluator, |_| {
        Box::new(BridgedSearcher::new(
            "RL",
            Box::new(|| {
                Box::new(DdpgAgent::new(DdpgConfig {
                    warmup: 8,
                    batch_size: 4,
                    ..DdpgConfig::default()
                }))
            }),
        ))
    });
    assert_eq!(report.total_evaluations, 120);
    assert!(report.best_mapping.is_some());
    assert!(space.is_member(report.best_mapping.as_ref().unwrap()));
    assert!(report.best_cost().is_finite());
}

/// Prioritized optimization metrics flow end-to-end: the winning mapping's
/// metric vector matches a fresh evaluation, in priority order.
#[test]
fn prioritized_metrics_flow_through_the_report() {
    let arch = Architecture::example();
    let problem = ProblemSpec::conv1d(768, 7);
    let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
    let model = CostModel::new(arch.clone(), problem);
    let evaluator = Arc::new(ModelEvaluator::with_metrics(
        model.clone(),
        vec![OptMetric::Delay, OptMetric::Energy, OptMetric::Edp],
    ));
    let mapper = Mapper::new(MapperConfig {
        threads: 2,
        seed: 5,
        termination: TerminationPolicy::search_size(300),
        ..MapperConfig::default()
    });
    let report = mapper.run(&space, evaluator, |_| Box::new(RandomSearch::new()));
    let best = report.best_mapping.as_ref().expect("best mapping");
    let metrics = report.best_metrics.as_ref().expect("metrics");
    assert_eq!(metrics.metrics.len(), 3);
    let cost = model.evaluate(best);
    assert_eq!(metrics.metrics[0], OptMetric::Delay.resolve(&cost, &arch));
    assert_eq!(metrics.metrics[1], OptMetric::Energy.resolve(&cost, &arch));
    assert_eq!(metrics.metrics[2], OptMetric::Edp.resolve(&cost, &arch));
    // No other thread found a strictly better delay (lexicographic winner).
    for t in &report.shards {
        if let Some((_, eval)) = &t.best {
            assert!(!eval.better_than(metrics));
        }
    }
}

/// The mm-core gradient proposer (Phase-2 surrogate search) shards across
/// mapper threads like any other searcher.
#[test]
fn gradient_proposer_runs_under_the_mapper() {
    use mm_core::{generate_training_set, Phase1Config, Phase2Config, Surrogate};
    use mm_workloads::conv1d::Conv1dFamily;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let arch = Architecture::example();
    let mut rng = StdRng::seed_from_u64(11);
    let dataset = generate_training_set(&arch, &Conv1dFamily::default(), 1200, 40, &mut rng)
        .expect("dataset");
    let phase1 = Phase1Config {
        hidden_layers: vec![32, 32],
        epochs: 15,
        batch_size: 64,
        ..Phase1Config::quick()
    };
    let (surrogate, _) = Surrogate::train(arch.clone(), &dataset, &phase1, &mut rng).unwrap();

    let problem = ProblemSpec::conv1d(900, 7);
    let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
    let evaluator = Arc::new(ModelEvaluator::edp(CostModel::new(arch, problem.clone())));

    let mapper = Mapper::new(MapperConfig {
        threads: 2,
        seed: 13,
        termination: TerminationPolicy::search_size(400),
        ..MapperConfig::default()
    });
    let report = mapper.run(&space, evaluator, |_| {
        Box::new(
            mm_core::GradientProposer::new(&surrogate, problem.clone(), Phase2Config::default())
                .expect("family match"),
        )
    });
    assert_eq!(report.total_evaluations, 400);
    let best = report.best_mapping.as_ref().expect("best mapping");
    assert!(space.is_member(best));
    assert!(report.best_cost().is_finite());
}

/// Acceptance: under the deterministic schedule, the canonical report is
/// byte-identical across worker counts — on the toy conv1d problem and on
/// every Table 1 target — with the map space sharded into disjoint slices.
#[test]
fn deterministic_canonical_reports_are_worker_count_independent() {
    use mm_mapper::MapperSchedule;
    use mm_workloads::{evaluated_accelerator, table1};

    let arch = evaluated_accelerator();
    let mut problems = vec![ProblemSpec::conv1d(768, 7)];
    problems.extend(table1::all_problems().into_iter().map(|t| t.problem));
    for problem in problems {
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let evaluator: Arc<dyn mm_mapper::CostEvaluator> = Arc::new(ModelEvaluator::edp(
            CostModel::new(arch.clone(), problem.clone()),
        ));
        let run = |threads: usize| {
            Mapper::new(MapperConfig {
                threads,
                shards: Some(4),
                shard_space: true,
                schedule: MapperSchedule::Deterministic,
                seed: 17,
                termination: TerminationPolicy::search_size(160),
                ..MapperConfig::default()
            })
            .run(&space, Arc::clone(&evaluator), |_| {
                Box::new(RandomSearch::new())
            })
        };
        let canon1 = run(1).canonical_string();
        let canon4 = run(4).canonical_string();
        assert_eq!(
            canon1, canon4,
            "{}: worker count leaked into the report",
            problem.name
        );
    }
}

/// Acceptance: under the deterministic schedule, the canonical report stays
/// byte-identical across 1/2/4 worker threads for **every** sync policy —
/// policy-enabled runs exchange incumbents at barrier rounds whose content
/// is worker-count independent — and this holds both with pure RNG-stream
/// shards and with the map space itself sharded into disjoint slices.
#[test]
fn canonical_reports_are_worker_count_independent_under_every_sync_policy() {
    let (space, evaluator) = setup();
    let policies = [
        SyncPolicy::Off,
        SyncPolicy::Anchor,
        SyncPolicy::Restart { patience: 1 },
        SyncPolicy::Annealed {
            start: 0.9,
            end: 0.1,
        },
    ];
    for sync in policies {
        for shard_space in [false, true] {
            let run = |threads: usize| {
                Mapper::new(MapperConfig {
                    threads,
                    shards: Some(4),
                    shard_space,
                    seed: 29,
                    sync_interval: 16,
                    sync,
                    termination: TerminationPolicy::search_size(320),
                    ..MapperConfig::default()
                })
                .run(&space, Arc::clone(&evaluator), sa_factory)
            };
            let canon1 = run(1).canonical_string();
            let canon2 = run(2).canonical_string();
            let canon4 = run(4).canonical_string();
            assert_eq!(
                canon1, canon2,
                "{sync} (shard_space={shard_space}): 2 workers leaked into the report"
            );
            assert_eq!(
                canon1, canon4,
                "{sync} (shard_space={shard_space}): 4 workers leaked into the report"
            );
        }
    }
}

/// Every stepwise searcher — Random/SA/GA and the now-stepwise DDPG agent
/// — runs under an enabled sync policy and still spends the exact budget.
/// (`BridgedSearcher` is the one deliberate exception: a bridged monolithic
/// searcher has no mid-run steering hook, so its `observe_global_best`
/// documents itself as a no-op.)
#[test]
fn sync_policies_drive_every_searcher_kind() {
    let (space, evaluator) = setup();
    type Factory = fn(usize) -> Box<dyn ProposalSearch>;
    let factories: Vec<(&str, Factory)> = vec![
        ("Random", |_| Box::new(RandomSearch::new())),
        ("SA", sa_factory),
        ("GA", |_| {
            Box::new(GeneticAlgorithm::new(GeneticConfig {
                population: 12,
                ..GeneticConfig::default()
            }))
        }),
        ("RL", |_| {
            Box::new(DdpgAgent::new(DdpgConfig {
                warmup: 8,
                batch_size: 4,
                ..DdpgConfig::default()
            }))
        }),
    ];
    for (name, factory) in factories {
        for sync in [SyncPolicy::Anchor, SyncPolicy::Restart { patience: 0 }] {
            let report = Mapper::new(MapperConfig {
                threads: 2,
                shards: Some(2),
                seed: 31,
                sync_interval: 16,
                sync,
                termination: TerminationPolicy::search_size(128),
                ..MapperConfig::default()
            })
            .run(&space, Arc::clone(&evaluator), factory);
            assert_eq!(report.total_evaluations, 128, "{name} under {sync}");
            let best = report.best_mapping.as_ref().expect("found a mapping");
            assert!(space.is_member(best), "{name} under {sync}");
            assert!(report.best_cost().is_finite());
        }
    }
}

/// Acceptance: work-stealing reaches the same-or-better best cost than the
/// deterministic split on conv1d and the Table 1 set when a shard finishes
/// early (its unused budget is stolen, so the other shards' deterministic
/// streams are evaluated further — a strict superset of proposals).
#[test]
fn work_stealing_is_same_or_better_on_conv1d_and_table1() {
    use mm_mapper::MapperSchedule;
    use mm_workloads::{evaluated_accelerator, table1};

    /// Random search that stops proposing after `limit` proposals.
    struct LimitedRandom {
        limit: u64,
        proposed: u64,
    }
    impl ProposalSearch for LimitedRandom {
        fn name(&self) -> &str {
            "LimitedRandom"
        }
        fn begin(
            &mut self,
            _space: &dyn mm_mapspace::MapSpaceView,
            _horizon: Option<u64>,
            _rng: &mut rand::rngs::StdRng,
        ) {
        }
        fn propose(
            &mut self,
            space: &dyn mm_mapspace::MapSpaceView,
            rng: &mut rand::rngs::StdRng,
            max: usize,
            out: &mut mm_search::ProposalBuf,
        ) {
            let room = self.limit.saturating_sub(self.proposed).min(max as u64);
            for _ in 0..room {
                out.push(space.random_mapping(rng));
            }
            self.proposed += room;
        }
        fn report(&mut self, _m: &mm_mapspace::Mapping, _c: f64, _rng: &mut rand::rngs::StdRng) {}
    }

    let arch = evaluated_accelerator();
    let mut problems = vec![ProblemSpec::conv1d(768, 7)];
    problems.extend(table1::all_problems().into_iter().map(|t| t.problem));
    for problem in problems {
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let evaluator: Arc<dyn mm_mapper::CostEvaluator> = Arc::new(ModelEvaluator::edp(
            CostModel::new(arch.clone(), problem.clone()),
        ));
        // Shard 0 exhausts after 10 proposals; shard 1 is unlimited.
        let factory = |s: usize| -> Box<dyn ProposalSearch> {
            if s == 0 {
                Box::new(LimitedRandom {
                    limit: 10,
                    proposed: 0,
                })
            } else {
                Box::new(RandomSearch::new())
            }
        };
        let run = |schedule: MapperSchedule| {
            Mapper::new(MapperConfig {
                threads: 2,
                shards: Some(2),
                schedule,
                seed: 23,
                termination: TerminationPolicy::search_size(200),
                ..MapperConfig::default()
            })
            .run(&space, Arc::clone(&evaluator), factory)
        };
        let fixed = run(MapperSchedule::Deterministic);
        let stealing = run(MapperSchedule::WorkStealing);
        assert_eq!(
            stealing.total_evaluations, 200,
            "{}: stealing must spend the whole budget",
            problem.name
        );
        assert!(fixed.total_evaluations < 200);
        assert!(
            stealing.best_cost() <= fixed.best_cost(),
            "{}: stealing best {} worse than deterministic best {}",
            problem.name,
            stealing.best_cost(),
            fixed.best_cost()
        );
    }
}
