//! [`run_pipelined`]: drive one [`ProposalSearch`] against an [`EvalPool`]
//! with proposals pipelined ahead of pending evaluations.
//!
//! The sequential driver (`mm_search::drive`) alternates propose → evaluate
//! strictly. Here, up to `lookahead` proposals are in flight at once: while
//! the pool's workers evaluate earlier candidates, the searcher keeps
//! proposing (random search and the GA generate whole batches ahead;
//! gradient search's trajectory is independent of true costs, so it can run
//! arbitrarily far ahead). Each proposal batch is submitted as one chunk job
//! per worker, so evaluators overriding
//! [`CostEvaluator::evaluate_batch`](crate::CostEvaluator::evaluate_batch)
//! (e.g. the surrogate's batched forward pass) see generation-sized batches
//! instead of single mappings. Results are re-ordered back into proposal
//! order before being reported, preserving the `ProposalSearch` contract.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use mm_mapspace::{MapSpaceView, Mapping};
use mm_search::{Budget, ProposalBuf, ProposalSearch, SearchTrace};
use rand::rngs::StdRng;

use crate::eval::EvalPool;
use crate::metrics::Evaluation;

/// One submitted proposal batch awaiting reports. The mappings live in an
/// `Arc` shared with the pool's chunk jobs ([`EvalPool::submit_shared`]), so
/// submission clones no mapping; once every member is reported the storage
/// is reclaimed for the next proposal round.
struct InFlightBatch {
    /// Pool id of the batch's first mapping (ids are contiguous).
    base_id: u64,
    /// Live mappings in the batch (`mappings[..count]`).
    count: usize,
    /// Members reported back to the searcher so far.
    reported: usize,
    /// The shared batch storage (may hold spare slots beyond `count`).
    mappings: Arc<Vec<Mapping>>,
}

/// Minimum in-flight proposal depth of pipelined drivers (when the searcher
/// tolerates it): deep enough that per-worker chunk jobs carry meaningful
/// batches for `CostEvaluator::evaluate_batch` fast paths (e.g. ≥ 16-row
/// surrogate forward passes on a 2-worker pool), independent of pool width.
pub const MIN_PIPELINE_DEPTH: usize = 32;

/// Clamp a searcher's `lookahead` to the in-flight depth a pool can keep
/// fed: at least 1, at most two proposals per worker — but never capped
/// below [`MIN_PIPELINE_DEPTH`], so per-worker chunk jobs still carry real
/// batches for `CostEvaluator::evaluate_batch` fast paths. The one clamp
/// every pool driver ([`run_pipelined`] and the serve scheduler) funnels
/// through.
pub fn pipeline_depth(lookahead: usize, workers: usize) -> usize {
    lookahead.clamp(1, (workers * 2).max(MIN_PIPELINE_DEPTH))
}

/// Drive `search` against `pool`, pipelining proposals ahead of pending
/// evaluations, until `budget` evaluations complete (or time runs out).
pub fn run_pipelined(
    search: &mut dyn ProposalSearch,
    space: &dyn MapSpaceView,
    pool: &mut EvalPool,
    budget: Budget,
    rng: &mut StdRng,
) -> SearchTrace {
    let start = Instant::now();
    let mut trace = SearchTrace::new(search.name());
    // At the spans level the pipelined driver traces its own lane:
    // searcher proposals vs. waiting on the pool.
    let track = mm_telemetry::span_enabled().then(|| mm_telemetry::track("pipeline"));
    let run_span = track.as_ref().and_then(|t| t.span("pipeline.run"));
    let horizon = (budget.max_queries < u64::MAX).then_some(budget.max_queries);
    search.begin(space, horizon, rng);

    // Proposal batches submitted to the pool, in proposal order (front =
    // oldest). No per-proposal clone: each batch's storage is `Arc`-shared
    // with the pool's chunk jobs.
    let mut pending: VecDeque<InFlightBatch> = VecDeque::new();
    // Reclaimed batch storage, reused by later proposal rounds so the steady
    // state allocates nothing.
    let mut free: Vec<Vec<Mapping>> = Vec::new();
    // Results that arrived out of order, keyed by job id.
    let mut arrived: BTreeMap<u64, Evaluation> = BTreeMap::new();
    let mut submitted = 0u64;
    let mut completed = 0u64;
    // Cap in-flight work: the searcher's tolerance, but at least
    // MIN_PIPELINE_DEPTH so batched evaluators see real batches.
    let max_in_flight = pipeline_depth(search.lookahead(), pool.workers()).min(
        usize::try_from(budget.max_queries)
            .unwrap_or(usize::MAX)
            .max(1),
    );

    let mut buf = ProposalBuf::new();
    loop {
        let exhausted = budget.exhausted(completed, start.elapsed());
        // Fill the pipeline while the budget allows new submissions.
        if !exhausted && submitted < budget.max_queries {
            let room = max_in_flight.saturating_sub((submitted - completed) as usize);
            let remaining = budget.max_queries - submitted;
            let max = (room as u64).min(remaining) as usize;
            if max > 0 {
                if buf.is_empty() {
                    if let Some(slots) = free.pop() {
                        buf.restore(slots);
                    }
                }
                buf.clear();
                {
                    let _span = track.as_ref().and_then(|t| t.span("searcher.propose"));
                    search.propose(space, rng, max, &mut buf);
                }
                // Submit the whole proposal batch as one chunk job per
                // worker (not one job per mapping), sharing the batch
                // storage with the jobs instead of cloning any mapping:
                // batched evaluators get their amortized fast path, and
                // per-job channel traffic drops by the chunk size.
                if !buf.is_empty() {
                    let (slots, count) = buf.take();
                    let batch = Arc::new(slots);
                    let ids = pool.submit_shared(None, &batch, count);
                    debug_assert_eq!(ids.end - ids.start, count as u64);
                    pending.push_back(InFlightBatch {
                        base_id: ids.start,
                        count,
                        reported: 0,
                        mappings: batch,
                    });
                    submitted += count as u64;
                }
            }
        }
        // Wait for the oldest outstanding proposal's result, reporting every
        // completion in proposal order. An empty queue means nothing is in
        // flight and nothing was proposed: done.
        let Some(front) = pending.front() else {
            break;
        };
        let oldest_id = front.base_id + front.reported as u64;
        if !arrived.contains_key(&oldest_id) {
            let _span = track.as_ref().and_then(|t| t.span("pipeline.wait"));
            while !arrived.contains_key(&oldest_id) {
                let (id, eval) = pool.recv();
                arrived.insert(id, eval);
            }
        }
        while let Some(front) = pending.front_mut() {
            let id = front.base_id + front.reported as u64;
            let Some(eval) = arrived.remove(&id) else {
                break;
            };
            let mapping = &front.mappings[front.reported];
            let cost = eval.primary();
            trace.record(cost, mapping, start.elapsed());
            search.report(mapping, cost, rng);
            front.reported += 1;
            completed += 1;
            if front.reported == front.count {
                // mm-lint: allow(panic): the loop condition proved front
                // exists.
                let batch = pending.pop_front().expect("front exists");
                // All chunk jobs are done, so ours is normally the last Arc
                // reference; reclaim the storage for the next round. (A
                // failed unwrap just means a worker still holds a clone for
                // a moment longer — the storage is dropped, not leaked.)
                if let Ok(slots) = Arc::try_unwrap(batch.mappings) {
                    free.push(slots);
                }
            }
        }

        if budget.exhausted(completed, start.elapsed()) && pending.is_empty() {
            break;
        }
        if budget.max_time.is_some() && budget.exhausted(completed, start.elapsed()) {
            // Time expired: drain what is in flight without proposing more.
            while !pending.is_empty() {
                let (id, eval) = pool.recv();
                arrived.insert(id, eval);
                while let Some(front) = pending.front_mut() {
                    let front_id = front.base_id + front.reported as u64;
                    let Some(eval) = arrived.remove(&front_id) else {
                        break;
                    };
                    let mapping = &front.mappings[front.reported];
                    trace.record(eval.primary(), mapping, start.elapsed());
                    search.report(mapping, eval.primary(), rng);
                    front.reported += 1;
                    if front.reported == front.count {
                        pending.pop_front();
                    }
                }
            }
            break;
        }
    }
    drop(run_span);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{CostEvaluator, ModelEvaluator};
    use mm_accel::{Architecture, CostModel};
    use mm_mapspace::{MapSpace, ProblemSpec};
    use mm_search::{GeneticAlgorithm, GeneticConfig, RandomSearch};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup() -> (MapSpace, Arc<dyn CostEvaluator>) {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(512, 7);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, problem);
        (space, Arc::new(ModelEvaluator::edp(model)))
    }

    #[test]
    fn pipeline_depth_pins_the_clamp_boundaries() {
        // Below MIN_PIPELINE_DEPTH worth of workers, the floor wins: the
        // cap is MIN_PIPELINE_DEPTH regardless of pool width.
        assert_eq!(pipeline_depth(1000, 1), MIN_PIPELINE_DEPTH);
        assert_eq!(
            pipeline_depth(1000, MIN_PIPELINE_DEPTH / 2),
            MIN_PIPELINE_DEPTH
        );
        // From workers*2 == MIN_PIPELINE_DEPTH upward, workers*2 wins.
        assert_eq!(
            pipeline_depth(1000, MIN_PIPELINE_DEPTH / 2 + 1),
            MIN_PIPELINE_DEPTH + 2
        );
        assert_eq!(pipeline_depth(1000, 20), 40);
        // A modest lookahead is never inflated, and zero clamps to 1.
        assert_eq!(pipeline_depth(10, 20), 10);
        assert_eq!(pipeline_depth(1, 20), 1);
        assert_eq!(pipeline_depth(0, 20), 1);
        assert_eq!(pipeline_depth(usize::MAX, 3), MIN_PIPELINE_DEPTH);
    }

    #[test]
    fn pipelined_random_search_completes_exact_budget() {
        let (space, evaluator) = setup();
        let mut pool = EvalPool::new(evaluator, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let mut rs = RandomSearch::new();
        let trace = run_pipelined(
            &mut rs,
            &space,
            &mut pool,
            Budget::iterations(100),
            &mut rng,
        );
        assert_eq!(trace.len(), 100);
        assert!(trace.best_cost.is_finite());
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn pipelined_ga_matches_sequential_semantics() {
        // The GA's generations must still be complete before evolution: the
        // reorder buffer guarantees report order, so the pipelined run with
        // a fixed seed equals the sequential drive with the same seed.
        let (space, evaluator) = setup();
        let ga_config = GeneticConfig {
            population: 12,
            ..GeneticConfig::default()
        };
        let budget = Budget::iterations(120);

        let mut obj = crate::eval::EvaluatorObjective::new(Arc::clone(&evaluator));
        let sequential = mm_search::drive(
            &mut GeneticAlgorithm::new(ga_config),
            &space,
            &mut obj,
            budget,
            &mut StdRng::seed_from_u64(5),
        );

        let mut pool = EvalPool::new(evaluator, 4);
        let pipelined = run_pipelined(
            &mut GeneticAlgorithm::new(ga_config),
            &space,
            &mut pool,
            budget,
            &mut StdRng::seed_from_u64(5),
        );
        assert_eq!(sequential.len(), pipelined.len());
        assert_eq!(sequential.best_cost, pipelined.best_cost);
    }
}
