//! Mapping evaluation: the [`CostEvaluator`] abstraction and the
//! [`EvalPool`] worker pool.
//!
//! A [`CostEvaluator`] is the thread-safe counterpart of `mm-search`'s
//! `Objective`: a pure `&self` cost function that many threads can query
//! concurrently. [`EvalPool`] fans batches of mappings out to a fixed set of
//! `std::thread` workers over channels — the `AcceleratorPool` pattern from
//! pytimeloop — returning results tagged with job ids so callers can
//! pipeline submissions ahead of completions.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use mm_accel::CostModel;
use mm_mapspace::Mapping;
use mm_search::Objective;

use crate::metrics::{Evaluation, OptMetric};

/// A thread-safe mapping cost function producing prioritized metrics.
pub trait CostEvaluator: Send + Sync {
    /// Evaluate one mapping.
    fn evaluate(&self, mapping: &Mapping) -> Evaluation;

    /// The metric priority list this evaluator produces (for reporting).
    fn metrics(&self) -> &[OptMetric] {
        &[OptMetric::Edp]
    }
}

/// The reference cost model as a [`CostEvaluator`] with a prioritized
/// `optimization_metrics` list (Timeloop-mapper style).
#[derive(Debug, Clone)]
pub struct ModelEvaluator {
    model: CostModel,
    metrics: Vec<OptMetric>,
}

impl ModelEvaluator {
    /// Evaluator optimizing EDP only (the paper's objective).
    pub fn edp(model: CostModel) -> Self {
        Self::with_metrics(model, vec![OptMetric::Edp])
    }

    /// Evaluator with an explicit metric priority list.
    ///
    /// # Panics
    ///
    /// Panics if `metrics` is empty.
    pub fn with_metrics(model: CostModel, metrics: Vec<OptMetric>) -> Self {
        assert!(
            !metrics.is_empty(),
            "optimization_metrics must be non-empty"
        );
        ModelEvaluator { model, metrics }
    }

    /// The underlying cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }
}

impl CostEvaluator for ModelEvaluator {
    fn evaluate(&self, mapping: &Mapping) -> Evaluation {
        let cost = self.model.evaluate(mapping);
        let arch = self.model.arch();
        Evaluation {
            metrics: self
                .metrics
                .iter()
                .map(|m| m.resolve(&cost, arch))
                .collect(),
        }
    }

    fn metrics(&self) -> &[OptMetric] {
        &self.metrics
    }
}

/// Wrap any thread-safe closure as a single-metric [`CostEvaluator`].
pub struct FnEvaluator<F> {
    f: F,
}

impl<F: Fn(&Mapping) -> f64 + Send + Sync> FnEvaluator<F> {
    /// Wrap `f` as an evaluator.
    pub fn new(f: F) -> Self {
        FnEvaluator { f }
    }
}

impl<F: Fn(&Mapping) -> f64 + Send + Sync> CostEvaluator for FnEvaluator<F> {
    fn evaluate(&self, mapping: &Mapping) -> Evaluation {
        Evaluation::scalar((self.f)(mapping))
    }
}

/// Adapter exposing a [`CostEvaluator`] as a classic mutable
/// [`Objective`], for single-threaded `Searcher` loops.
pub struct EvaluatorObjective {
    evaluator: Arc<dyn CostEvaluator>,
    queries: u64,
}

impl EvaluatorObjective {
    /// Wrap `evaluator` with query counting.
    pub fn new(evaluator: Arc<dyn CostEvaluator>) -> Self {
        EvaluatorObjective {
            evaluator,
            queries: 0,
        }
    }
}

impl Objective for EvaluatorObjective {
    fn cost(&mut self, mapping: &Mapping) -> f64 {
        self.queries += 1;
        self.evaluator.evaluate(mapping).primary()
    }

    fn queries(&self) -> u64 {
        self.queries
    }
}

/// One unit of work for the pool.
struct Job {
    id: u64,
    mapping: Mapping,
}

/// A fixed pool of evaluation workers fed over channels.
///
/// Submissions are tagged with monotonically increasing job ids; results
/// come back in completion order (use [`EvalPool::evaluate_batch`] for
/// order-preserving convenience).
pub struct EvalPool {
    job_tx: Option<Sender<Job>>,
    result_rx: Receiver<(u64, Result<Evaluation, String>)>,
    workers: Vec<JoinHandle<()>>,
    next_id: u64,
    in_flight: u64,
}

/// Human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl EvalPool {
    /// Spawn `workers` evaluation threads sharing `evaluator`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(evaluator: Arc<dyn CostEvaluator>, workers: usize) -> Self {
        assert!(workers > 0, "EvalPool needs at least one worker");
        let (job_tx, job_rx) = channel::<Job>();
        let (result_tx, result_rx) = channel::<(u64, Result<Evaluation, String>)>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let handles = (0..workers)
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                let result_tx = result_tx.clone();
                let evaluator = Arc::clone(&evaluator);
                std::thread::spawn(move || loop {
                    // Hold the lock only while popping; evaluate unlocked.
                    let job = match job_rx.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => return,
                    };
                    match job {
                        Ok(job) => {
                            // A panicking evaluator must not strand the
                            // job: report the panic as this job's result so
                            // the consumer fails loudly instead of blocking
                            // forever on a result that never comes.
                            let eval =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    evaluator.evaluate(&job.mapping)
                                }));
                            match eval {
                                Ok(eval) => {
                                    if result_tx.send((job.id, Ok(eval))).is_err() {
                                        return; // pool dropped
                                    }
                                }
                                Err(payload) => {
                                    let _ = result_tx.send((job.id, Err(panic_message(payload))));
                                    return; // die, as an uncaught panic would
                                }
                            }
                        }
                        Err(_) => return, // job channel closed
                    }
                })
            })
            .collect();
        EvalPool {
            job_tx: Some(job_tx),
            result_rx,
            workers: handles,
            next_id: 0,
            in_flight: 0,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs submitted but not yet received.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Submit one mapping; returns its job id.
    pub fn submit(&mut self, mapping: Mapping) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.in_flight += 1;
        self.job_tx
            .as_ref()
            .expect("pool not shut down")
            .send(Job { id, mapping })
            .expect("evaluation workers alive");
        id
    }

    /// Block until the next result is ready.
    ///
    /// # Panics
    ///
    /// Panics if nothing is in flight, or if the worker evaluating the
    /// received job panicked (the panic message is propagated).
    pub fn recv(&mut self) -> (u64, Evaluation) {
        assert!(self.in_flight > 0, "recv with no jobs in flight");
        let (id, result) = self
            .result_rx
            .recv()
            .expect("evaluation workers alive while jobs are in flight");
        self.in_flight -= 1;
        match result {
            Ok(eval) => (id, eval),
            Err(msg) => panic!("evaluation worker panicked: {msg}"),
        }
    }

    /// A result if one is already available.
    ///
    /// # Panics
    ///
    /// Panics if the worker evaluating the received job panicked.
    pub fn try_recv(&mut self) -> Option<(u64, Evaluation)> {
        match self.result_rx.try_recv() {
            Ok((id, result)) => {
                self.in_flight -= 1;
                match result {
                    Ok(eval) => Some((id, eval)),
                    Err(msg) => panic!("evaluation worker panicked: {msg}"),
                }
            }
            Err(_) => None,
        }
    }

    /// Evaluate a batch, preserving input order. Requires nothing else in
    /// flight (so ids map cleanly back to batch positions).
    ///
    /// # Panics
    ///
    /// Panics if jobs are already in flight.
    pub fn evaluate_batch(&mut self, mappings: &[Mapping]) -> Vec<Evaluation> {
        assert_eq!(self.in_flight, 0, "evaluate_batch needs an idle pool");
        let base = self.next_id;
        for m in mappings {
            self.submit(m.clone());
        }
        let mut by_id: HashMap<u64, Evaluation> = HashMap::with_capacity(mappings.len());
        while by_id.len() < mappings.len() {
            let (id, eval) = self.recv();
            by_id.insert(id, eval);
        }
        (0..mappings.len() as u64)
            .map(|i| by_id.remove(&(base + i)).expect("every job completed"))
            .collect()
    }
}

impl Drop for EvalPool {
    fn drop(&mut self) {
        // Closing the job channel lets every worker drain and exit.
        self.job_tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_accel::Architecture;
    use mm_mapspace::{MapSpace, ProblemSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space_and_evaluator() -> (MapSpace, Arc<dyn CostEvaluator>) {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(256, 5);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, problem);
        (space, Arc::new(ModelEvaluator::edp(model)))
    }

    #[test]
    fn pool_matches_inline_evaluation() {
        let (space, evaluator) = space_and_evaluator();
        let mut rng = StdRng::seed_from_u64(0);
        let mappings: Vec<Mapping> = (0..24).map(|_| space.random_mapping(&mut rng)).collect();
        let inline: Vec<Evaluation> = mappings.iter().map(|m| evaluator.evaluate(m)).collect();

        let mut pool = EvalPool::new(Arc::clone(&evaluator), 4);
        assert_eq!(pool.workers(), 4);
        let pooled = pool.evaluate_batch(&mappings);
        assert_eq!(inline, pooled, "pool preserves order and values");
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn submit_and_recv_pipeline() {
        let (space, evaluator) = space_and_evaluator();
        let mut rng = StdRng::seed_from_u64(1);
        let mut pool = EvalPool::new(evaluator, 2);
        let ids: Vec<u64> = (0..8)
            .map(|_| pool.submit(space.random_mapping(&mut rng)))
            .collect();
        assert_eq!(pool.in_flight(), 8);
        let mut seen = Vec::new();
        for _ in 0..8 {
            let (id, eval) = pool.recv();
            assert!(eval.primary() > 0.0);
            seen.push(id);
        }
        seen.sort_unstable();
        assert_eq!(seen, ids);
        assert!(pool.try_recv().is_none());
    }

    #[test]
    fn evaluator_objective_counts_queries() {
        let (space, evaluator) = space_and_evaluator();
        let mut rng = StdRng::seed_from_u64(2);
        let m = space.random_mapping(&mut rng);
        let mut obj = EvaluatorObjective::new(evaluator);
        assert_eq!(obj.queries(), 0);
        let a = obj.cost(&m);
        let b = obj.cost(&m);
        assert_eq!(a, b);
        assert_eq!(obj.queries(), 2);
    }

    #[test]
    #[should_panic(expected = "evaluation worker panicked: boom for tile")]
    fn worker_panic_propagates_instead_of_hanging() {
        let (space, _) = space_and_evaluator();
        let mut rng = StdRng::seed_from_u64(4);
        let evaluator = Arc::new(FnEvaluator::new(|m: &Mapping| {
            assert!(m.tiles[0].is_empty(), "boom for tile {}", m.tiles[0].len());
            0.0
        }));
        let mut pool = EvalPool::new(evaluator, 2);
        pool.submit(space.random_mapping(&mut rng));
        // Must panic with the worker's message, not block forever.
        let _ = pool.recv();
    }

    #[test]
    fn fn_evaluator_wraps_closures() {
        let (space, _) = space_and_evaluator();
        let mut rng = StdRng::seed_from_u64(3);
        let m = space.random_mapping(&mut rng);
        let eval = FnEvaluator::new(|m: &Mapping| m.active_pes() as f64);
        assert_eq!(eval.evaluate(&m).primary(), m.active_pes() as f64);
        assert_eq!(eval.metrics(), &[OptMetric::Edp]);
    }
}
