//! Mapping evaluation: the [`CostEvaluator`] abstraction and the
//! [`EvalPool`] worker pool.
//!
//! A [`CostEvaluator`] is the thread-safe counterpart of `mm-search`'s
//! `Objective`: a pure `&self` cost function that many threads can query
//! concurrently. [`EvalPool`] fans batches of mappings out to a fixed set of
//! `std::thread` workers over channels — the `AcceleratorPool` pattern from
//! pytimeloop — returning results tagged with job ids so callers can
//! pipeline submissions ahead of completions.

use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use mm_accel::{BatchCosts, CostModel, EvalScratch};
use mm_mapspace::Mapping;
use mm_search::Objective;

use crate::metrics::{Evaluation, OptMetric};

thread_local! {
    /// Per-thread eval scratch shared by every [`ModelEvaluator`] on this
    /// thread: pool workers evaluate thousands of mappings each, and the
    /// scratch makes all but the first allocation-free.
    static SCRATCH: RefCell<(EvalScratch, BatchCosts)> =
        RefCell::new((EvalScratch::new(), BatchCosts::new()));
}

/// A thread-safe mapping cost function producing prioritized metrics.
pub trait CostEvaluator: Send + Sync {
    /// Evaluate one mapping.
    fn evaluate(&self, mapping: &Mapping) -> Evaluation;

    /// Evaluate a batch of mappings, preserving input order.
    ///
    /// The default loops over [`evaluate`](Self::evaluate); evaluators with a
    /// cheaper amortized path (the surrogate's single batched forward pass,
    /// or any cost model with per-call setup worth hoisting) override this.
    /// [`EvalPool`] dispatches whole batches to workers through this method.
    fn evaluate_batch(&self, mappings: &[Mapping]) -> Vec<Evaluation> {
        mappings.iter().map(|m| self.evaluate(m)).collect()
    }

    /// The metric priority list this evaluator produces (for reporting).
    fn metrics(&self) -> &[OptMetric] {
        &[OptMetric::Edp]
    }
}

/// The reference cost model as a [`CostEvaluator`] with a prioritized
/// `optimization_metrics` list (Timeloop-mapper style).
#[derive(Debug, Clone)]
pub struct ModelEvaluator {
    model: CostModel,
    metrics: Vec<OptMetric>,
}

impl ModelEvaluator {
    /// Evaluator optimizing EDP only (the paper's objective).
    pub fn edp(model: CostModel) -> Self {
        Self::with_metrics(model, vec![OptMetric::Edp])
    }

    /// Evaluator with an explicit metric priority list.
    ///
    /// # Panics
    ///
    /// Panics if `metrics` is empty.
    pub fn with_metrics(model: CostModel, metrics: Vec<OptMetric>) -> Self {
        assert!(
            !metrics.is_empty(),
            "optimization_metrics must be non-empty"
        );
        ModelEvaluator { model, metrics }
    }

    /// The underlying cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }
}

impl CostEvaluator for ModelEvaluator {
    fn evaluate(&self, mapping: &Mapping) -> Evaluation {
        let arch = self.model.arch();
        SCRATCH.with(|cell| {
            let scratch = &mut cell.borrow_mut().0;
            let cost = self.model.evaluate_into(scratch, mapping);
            Evaluation {
                metrics: self
                    .metrics
                    .iter()
                    .map(|m| m.resolve_summary(&cost, arch))
                    .collect(),
            }
        })
    }

    fn evaluate_batch(&self, mappings: &[Mapping]) -> Vec<Evaluation> {
        // The SoA batch kernel: one scratch arena reused across the whole
        // batch, with the arch borrow and the metric list hoisted out of the
        // per-mapping loop.
        let arch = self.model.arch();
        SCRATCH.with(|cell| {
            let (scratch, costs) = &mut *cell.borrow_mut();
            self.model.evaluate_batch_into(scratch, mappings, costs);
            (0..costs.len())
                .map(|i| {
                    let cost = costs.summary(i);
                    Evaluation {
                        metrics: self
                            .metrics
                            .iter()
                            .map(|m| m.resolve_summary(&cost, arch))
                            .collect(),
                    }
                })
                .collect()
        })
    }

    fn metrics(&self) -> &[OptMetric] {
        &self.metrics
    }
}

/// Wrap any thread-safe closure as a single-metric [`CostEvaluator`].
pub struct FnEvaluator<F> {
    f: F,
}

impl<F: Fn(&Mapping) -> f64 + Send + Sync> FnEvaluator<F> {
    /// Wrap `f` as an evaluator.
    pub fn new(f: F) -> Self {
        FnEvaluator { f }
    }
}

impl<F: Fn(&Mapping) -> f64 + Send + Sync> CostEvaluator for FnEvaluator<F> {
    fn evaluate(&self, mapping: &Mapping) -> Evaluation {
        Evaluation::scalar((self.f)(mapping))
    }
}

/// Adapter exposing a [`CostEvaluator`] as a classic mutable
/// [`Objective`], for single-threaded `Searcher` loops.
pub struct EvaluatorObjective {
    evaluator: Arc<dyn CostEvaluator>,
    queries: u64,
}

impl EvaluatorObjective {
    /// Wrap `evaluator` with query counting.
    pub fn new(evaluator: Arc<dyn CostEvaluator>) -> Self {
        EvaluatorObjective {
            evaluator,
            queries: 0,
        }
    }
}

impl Objective for EvaluatorObjective {
    fn cost(&mut self, mapping: &Mapping) -> f64 {
        self.queries += 1;
        self.evaluator.evaluate(mapping).primary()
    }

    fn queries(&self) -> u64 {
        self.queries
    }
}

/// The mappings of one job: either owned outright, or a sub-range of a
/// shared batch ([`EvalPool::submit_shared`] fans one `Arc`'d proposal
/// batch out to every worker without cloning a single mapping).
enum JobMappings {
    Owned(Vec<Mapping>),
    Shared {
        batch: Arc<Vec<Mapping>>,
        range: Range<usize>,
    },
}

impl JobMappings {
    fn as_slice(&self) -> &[Mapping] {
        match self {
            JobMappings::Owned(v) => v,
            JobMappings::Shared { batch, range } => &batch[range.clone()],
        }
    }
}

/// One unit of work for the pool: a batch of mappings occupying the
/// contiguous id range `base_id .. base_id + mappings.len()`, evaluated by
/// `evaluator` (or the pool's default when `None`) in a single
/// [`CostEvaluator::evaluate_batch`] call on one worker.
struct Job {
    base_id: u64,
    mappings: JobMappings,
    evaluator: Option<Arc<dyn CostEvaluator>>,
    /// Enqueue time, captured only when telemetry timing is on so the off
    /// level never reads a clock (the queue-latency histogram is fed from
    /// it on the worker side).
    queued_at: Option<std::time::Instant>,
}

/// A fixed pool of evaluation workers fed over channels.
///
/// Work is dispatched in *batch jobs*: each job is a contiguous range of
/// per-mapping ids evaluated by one worker through a single
/// [`CostEvaluator::evaluate_batch`] call (amortizing dispatch and enabling
/// batched evaluators such as the surrogate's single forward pass). Results
/// still come back per mapping, tagged with monotonically increasing ids, in
/// completion order — single-mapping [`submit`](EvalPool::submit)/
/// [`recv`](EvalPool::recv) consumers are unaffected.
///
/// Every submission may carry its own evaluator
/// ([`submit_for`](EvalPool::submit_for) /
/// [`submit_batch_for`](EvalPool::submit_batch_for)), so one long-lived pool
/// can serve many problems at once — the substrate of `mm-serve`'s
/// whole-network mapping service.
pub struct EvalPool {
    job_tx: Option<Sender<Job>>,
    result_rx: Receiver<(u64, Result<Evaluation, Arc<str>>)>,
    workers: Vec<JoinHandle<()>>,
    next_id: u64,
    in_flight: u64,
}

/// Human-readable message from a caught panic payload, shared so a failing
/// batch clones one `Arc` per member instead of one `String` per member.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> Arc<str> {
    if let Some(s) = payload.downcast_ref::<&str>() {
        Arc::from(*s)
    } else if let Some(s) = payload.downcast_ref::<String>() {
        Arc::from(s.as_str())
    } else {
        Arc::from("non-string panic payload")
    }
}

impl EvalPool {
    /// Spawn `workers` evaluation threads sharing `evaluator` as the default
    /// for submissions that do not carry their own.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(evaluator: Arc<dyn CostEvaluator>, workers: usize) -> Self {
        Self::spawn(Some(evaluator), workers)
    }

    /// Spawn a pool with **no** default evaluator: every submission must use
    /// [`submit_for`](Self::submit_for) /
    /// [`submit_batch_for`](Self::submit_batch_for). This is the shape used
    /// by a long-lived shared pool serving many problems (`mm-serve`).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn shared(workers: usize) -> Self {
        Self::spawn(None, workers)
    }

    fn spawn(default_evaluator: Option<Arc<dyn CostEvaluator>>, workers: usize) -> Self {
        assert!(workers > 0, "EvalPool needs at least one worker");
        let (job_tx, job_rx) = channel::<Job>();
        let (result_tx, result_rx) = channel::<(u64, Result<Evaluation, Arc<str>>)>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let handles = (0..workers)
            .map(|w| {
                let job_rx = Arc::clone(&job_rx);
                let result_tx = result_tx.clone();
                let default_evaluator = default_evaluator.clone();
                // Telemetry handles interned once per worker; bumps are one
                // relaxed level check on the hot path. The handles must
                // exist even while telemetry is off because the level can
                // be raised at runtime.
                // mm-lint: allow(telemetry-gate): one-time interning at worker spawn, not a hot-path call site
                let tele_evals = mm_telemetry::counter(&format!("eval_pool.worker{w}.evals"));
                let tele_latency = mm_telemetry::histogram("eval_pool.queue_latency_us");
                // mm-lint: allow(telemetry-gate): one-time interning at worker spawn, not a hot-path call site
                let tele_track = mm_telemetry::track(&format!("eval_pool.worker{w}"));
                std::thread::spawn(move || loop {
                    // Hold the lock only while popping; evaluate unlocked.
                    let job = match job_rx.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => return,
                    };
                    match job {
                        Ok(job) => {
                            let mappings = job.mappings.as_slice();
                            let n = mappings.len() as u64;
                            tele_evals.bump(n);
                            if let Some(queued_at) = job.queued_at {
                                tele_latency.record(
                                    queued_at.elapsed().as_micros().min(u128::from(u64::MAX))
                                        as u64,
                                );
                            }
                            let evaluator = job.evaluator.as_ref().or(default_evaluator.as_ref());
                            let Some(evaluator) = evaluator else {
                                let msg: Arc<str> =
                                    Arc::from("pool has no default evaluator; use submit_for");
                                for i in 0..n {
                                    let _ =
                                        result_tx.send((job.base_id + i, Err(Arc::clone(&msg))));
                                }
                                continue;
                            };
                            // A panicking evaluator must not strand the
                            // job: report the panic as every batch member's
                            // result so the consumer fails loudly instead of
                            // blocking forever on results that never come.
                            let batch_span = tele_track.span_n("eval_pool.batch", n);
                            let evals =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    evaluator.evaluate_batch(mappings)
                                }));
                            drop(batch_span);
                            match evals {
                                Ok(evals) if evals.len() == mappings.len() => {
                                    for (i, eval) in evals.into_iter().enumerate() {
                                        if result_tx
                                            .send((job.base_id + i as u64, Ok(eval)))
                                            .is_err()
                                        {
                                            return; // pool dropped
                                        }
                                    }
                                }
                                Ok(evals) => {
                                    let msg: Arc<str> = Arc::from(
                                        format!(
                                            "evaluate_batch returned {} results for {} mappings",
                                            evals.len(),
                                            mappings.len()
                                        )
                                        .as_str(),
                                    );
                                    for i in 0..n {
                                        let _ = result_tx
                                            .send((job.base_id + i, Err(Arc::clone(&msg))));
                                    }
                                    // Keep serving: one broken evaluator must
                                    // not shrink the shared pool for every
                                    // other job multiplexed on it.
                                }
                                Err(payload) => {
                                    let msg = panic_message(payload);
                                    for i in 0..n {
                                        let _ = result_tx
                                            .send((job.base_id + i, Err(Arc::clone(&msg))));
                                    }
                                    // The worker survives the caught panic:
                                    // the failure travels to the submitting
                                    // job as an Err result (recv re-raises
                                    // it; recv_result surfaces it), while
                                    // unrelated jobs sharing this pool keep
                                    // their workers.
                                }
                            }
                        }
                        Err(_) => return, // job channel closed
                    }
                })
            })
            .collect();
        EvalPool {
            job_tx: Some(job_tx),
            result_rx,
            workers: handles,
            next_id: 0,
            in_flight: 0,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Mappings submitted but not yet received.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Submit one mapping for the pool's default evaluator; returns its id.
    pub fn submit(&mut self, mapping: Mapping) -> u64 {
        self.submit_batch_for(None, vec![mapping]).start
    }

    /// Submit one mapping to be scored by `evaluator`; returns its id.
    pub fn submit_for(&mut self, evaluator: Arc<dyn CostEvaluator>, mapping: Mapping) -> u64 {
        self.submit_batch_for(Some(evaluator), vec![mapping]).start
    }

    /// Submit a batch of mappings as **one job** (one worker, one
    /// [`CostEvaluator::evaluate_batch`] call) for the default evaluator;
    /// returns the contiguous id range assigned to the batch members.
    pub fn submit_batch(&mut self, mappings: Vec<Mapping>) -> std::ops::Range<u64> {
        self.submit_batch_for(None, mappings)
    }

    /// Submit a batch of mappings as one job for `evaluator` (`None` = the
    /// pool default); returns the contiguous id range of the batch members.
    pub fn submit_batch_for(
        &mut self,
        evaluator: Option<Arc<dyn CostEvaluator>>,
        mappings: Vec<Mapping>,
    ) -> std::ops::Range<u64> {
        let base_id = self.next_id;
        let n = mappings.len() as u64;
        if n == 0 {
            return base_id..base_id;
        }
        self.next_id += n;
        self.in_flight += n;
        {
            static BATCH_SIZES: std::sync::OnceLock<Arc<mm_telemetry::Histogram>> =
                std::sync::OnceLock::new();
            BATCH_SIZES
                .get_or_init(|| mm_telemetry::histogram("eval_pool.batch_size"))
                .record(n);
        }
        self.job_tx
            .as_ref()
            // mm-lint: allow(panic): submitting after shutdown() is a
            // driver bug, not a recoverable state.
            .expect("pool not shut down")
            .send(Job {
                base_id,
                mappings: JobMappings::Owned(mappings),
                evaluator,
                queued_at: mm_telemetry::timing_enabled().then(std::time::Instant::now),
            })
            // mm-lint: allow(panic): workers only exit after the job channel
            // closes, so a send failure means the pool was torn down early.
            .expect("evaluation workers alive");
        base_id..base_id + n
    }

    /// Submit a batch of mappings split into one contiguous chunk job per
    /// worker (`None` = the pool default evaluator); returns the contiguous
    /// id range of the batch members. This is the canonical fan-out idiom —
    /// every worker gets one [`CostEvaluator::evaluate_batch`] call instead
    /// of one job per mapping — shared by [`evaluate_batch`](Self::evaluate_batch),
    /// `run_pipelined`, and `mm-serve`'s scheduler.
    pub fn submit_chunked(
        &mut self,
        evaluator: Option<Arc<dyn CostEvaluator>>,
        mappings: &[Mapping],
    ) -> std::ops::Range<u64> {
        let base_id = self.next_id;
        if mappings.is_empty() {
            return base_id..base_id;
        }
        let chunk = mappings.len().div_ceil(self.workers()).max(1);
        for c in mappings.chunks(chunk) {
            self.submit_batch_for(evaluator.clone(), c.to_vec());
        }
        base_id..base_id + mappings.len() as u64
    }

    /// Zero-copy variant of [`submit_chunked`](Self::submit_chunked): fan the
    /// first `count` mappings of an `Arc`-shared batch out as one contiguous
    /// chunk job per worker, without cloning a single mapping. Chunk sizes,
    /// id assignment, and telemetry match `submit_chunked` exactly.
    // mm-lint: hot-path — the steady-state eval loop must not allocate.
    pub fn submit_shared(
        &mut self,
        evaluator: Option<Arc<dyn CostEvaluator>>,
        batch: &Arc<Vec<Mapping>>,
        count: usize,
    ) -> Range<u64> {
        let base_id = self.next_id;
        let count = count.min(batch.len());
        if count == 0 {
            return base_id..base_id;
        }
        let chunk = count.div_ceil(self.workers()).max(1);
        let mut start = 0usize;
        while start < count {
            let end = (start + chunk).min(count);
            let n = (end - start) as u64;
            self.next_id += n;
            self.in_flight += n;
            {
                static BATCH_SIZES: std::sync::OnceLock<Arc<mm_telemetry::Histogram>> =
                    std::sync::OnceLock::new();
                BATCH_SIZES
                    .get_or_init(|| mm_telemetry::histogram("eval_pool.batch_size"))
                    .record(n);
            }
            self.job_tx
                .as_ref()
                // mm-lint: allow(panic): submitting after shutdown() is a
                // driver bug, not a recoverable state.
                .expect("pool not shut down")
                .send(Job {
                    base_id: base_id + start as u64,
                    mappings: JobMappings::Shared {
                        batch: Arc::clone(batch),
                        range: start..end,
                    },
                    evaluator: evaluator.clone(),
                    queued_at: mm_telemetry::timing_enabled().then(std::time::Instant::now),
                })
                // mm-lint: allow(panic): workers only exit after the job
                // channel closes, so a send failure means the pool was torn
                // down early.
                .expect("evaluation workers alive");
            start = end;
        }
        base_id..base_id + count as u64
    }

    /// Block until the next result is ready.
    ///
    /// # Panics
    ///
    /// Panics if nothing is in flight, or if the worker evaluating the
    /// received job panicked (the panic message is propagated).
    pub fn recv(&mut self) -> (u64, Evaluation) {
        assert!(self.in_flight > 0, "recv with no jobs in flight");
        let (id, result) = self
            .result_rx
            .recv()
            // mm-lint: allow(panic): a closed result channel with jobs in
            // flight means every worker died — unrecoverable.
            .expect("evaluation workers alive while jobs are in flight");
        self.in_flight -= 1;
        match result {
            Ok(eval) => (id, eval),
            // mm-lint: allow(panic): re-raising a worker panic on the
            // consuming thread is propagation, not a new failure.
            Err(msg) => panic!("evaluation worker panicked: {msg}"),
        }
    }

    /// Block until the next result is ready, surfacing a worker panic as an
    /// `Err` instead of re-raising it.
    ///
    /// This is the fault-isolating receive: a panicking evaluator fails only
    /// the job that submitted it (the worker survives the caught panic), so
    /// a multi-tenant consumer can fail one request without poisoning the
    /// shared pool. [`recv`](EvalPool::recv) keeps the propagating behavior
    /// for single-tenant drivers.
    ///
    /// # Panics
    ///
    /// Panics if nothing is in flight.
    pub fn recv_result(&mut self) -> (u64, Result<Evaluation, Arc<str>>) {
        assert!(self.in_flight > 0, "recv_result with no jobs in flight");
        let (id, result) = self
            .result_rx
            .recv()
            // mm-lint: allow(panic): a closed result channel with jobs in
            // flight means every worker died — unrecoverable.
            .expect("evaluation workers alive while jobs are in flight");
        self.in_flight -= 1;
        (id, result)
    }

    /// A result if one is already available.
    ///
    /// # Panics
    ///
    /// Panics if the worker evaluating the received job panicked.
    pub fn try_recv(&mut self) -> Option<(u64, Evaluation)> {
        match self.result_rx.try_recv() {
            Ok((id, result)) => {
                self.in_flight -= 1;
                match result {
                    Ok(eval) => Some((id, eval)),
                    // mm-lint: allow(panic): re-raising a worker panic on
                    // the consuming thread is propagation, not a new failure.
                    Err(msg) => panic!("evaluation worker panicked: {msg}"),
                }
            }
            Err(_) => None,
        }
    }

    /// Evaluate a batch, preserving input order. Requires nothing else in
    /// flight (so ids map cleanly back to batch positions).
    ///
    /// The batch is split into one contiguous chunk job per worker (not one
    /// job per mapping), so batched evaluators amortize their whole-batch
    /// fast path across at most `workers()` calls.
    ///
    /// # Panics
    ///
    /// Panics if jobs are already in flight.
    pub fn evaluate_batch(&mut self, mappings: &[Mapping]) -> Vec<Evaluation> {
        assert_eq!(self.in_flight, 0, "evaluate_batch needs an idle pool");
        if mappings.is_empty() {
            return Vec::new();
        }
        let base = self.submit_chunked(None, mappings).start;
        let mut by_id: HashMap<u64, Evaluation> = HashMap::with_capacity(mappings.len());
        while by_id.len() < mappings.len() {
            let (id, eval) = self.recv();
            by_id.insert(id, eval);
        }
        (0..mappings.len() as u64)
            // mm-lint: allow(panic): the recv loop above drains exactly the
            // ids submitted for this batch; a hole is a pool bug that must
            // fail loudly.
            .map(|i| by_id.remove(&(base + i)).expect("every job completed"))
            .collect()
    }
}

impl Drop for EvalPool {
    fn drop(&mut self) {
        // Closing the job channel lets every worker drain and exit.
        self.job_tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_accel::Architecture;
    use mm_mapspace::{MapSpace, ProblemSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space_and_evaluator() -> (MapSpace, Arc<dyn CostEvaluator>) {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(256, 5);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, problem);
        (space, Arc::new(ModelEvaluator::edp(model)))
    }

    #[test]
    fn pool_matches_inline_evaluation() {
        let (space, evaluator) = space_and_evaluator();
        let mut rng = StdRng::seed_from_u64(0);
        let mappings: Vec<Mapping> = (0..24).map(|_| space.random_mapping(&mut rng)).collect();
        let inline: Vec<Evaluation> = mappings.iter().map(|m| evaluator.evaluate(m)).collect();

        let mut pool = EvalPool::new(Arc::clone(&evaluator), 4);
        assert_eq!(pool.workers(), 4);
        let pooled = pool.evaluate_batch(&mappings);
        assert_eq!(inline, pooled, "pool preserves order and values");
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn submit_and_recv_pipeline() {
        let (space, evaluator) = space_and_evaluator();
        let mut rng = StdRng::seed_from_u64(1);
        let mut pool = EvalPool::new(evaluator, 2);
        let ids: Vec<u64> = (0..8)
            .map(|_| pool.submit(space.random_mapping(&mut rng)))
            .collect();
        assert_eq!(pool.in_flight(), 8);
        let mut seen = Vec::new();
        for _ in 0..8 {
            let (id, eval) = pool.recv();
            assert!(eval.primary() > 0.0);
            seen.push(id);
        }
        seen.sort_unstable();
        assert_eq!(seen, ids);
        assert!(pool.try_recv().is_none());
    }

    #[test]
    fn evaluator_objective_counts_queries() {
        let (space, evaluator) = space_and_evaluator();
        let mut rng = StdRng::seed_from_u64(2);
        let m = space.random_mapping(&mut rng);
        let mut obj = EvaluatorObjective::new(evaluator);
        assert_eq!(obj.queries(), 0);
        let a = obj.cost(&m);
        let b = obj.cost(&m);
        assert_eq!(a, b);
        assert_eq!(obj.queries(), 2);
    }

    #[test]
    #[should_panic(expected = "evaluation worker panicked: boom for tile")]
    fn worker_panic_propagates_instead_of_hanging() {
        let (space, _) = space_and_evaluator();
        let mut rng = StdRng::seed_from_u64(4);
        let evaluator = Arc::new(FnEvaluator::new(|m: &Mapping| {
            assert!(m.tiles[0].is_empty(), "boom for tile {}", m.tiles[0].len());
            0.0
        }));
        let mut pool = EvalPool::new(evaluator, 2);
        pool.submit(space.random_mapping(&mut rng));
        // Must panic with the worker's message, not block forever.
        let _ = pool.recv();
    }

    #[test]
    fn trait_batch_default_matches_singles() {
        let (space, evaluator) = space_and_evaluator();
        let mut rng = StdRng::seed_from_u64(5);
        let mappings: Vec<Mapping> = (0..7).map(|_| space.random_mapping(&mut rng)).collect();
        let singles: Vec<Evaluation> = mappings.iter().map(|m| evaluator.evaluate(m)).collect();
        assert_eq!(evaluator.evaluate_batch(&mappings), singles);
        // FnEvaluator exercises the default (loop) implementation.
        let f = FnEvaluator::new(|m: &Mapping| m.active_pes() as f64);
        let batched = f.evaluate_batch(&mappings);
        for (m, e) in mappings.iter().zip(&batched) {
            assert_eq!(e.primary(), m.active_pes() as f64);
        }
    }

    #[test]
    fn batch_submission_is_one_job_per_chunk() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        // Count evaluate_batch calls to prove chunking: 10 mappings on 2
        // workers must arrive in exactly 2 batch jobs of 5, not 10 singles.
        struct Counting {
            calls: AtomicUsize,
        }
        impl CostEvaluator for Counting {
            fn evaluate(&self, m: &Mapping) -> Evaluation {
                Evaluation::scalar(m.active_pes() as f64)
            }
            fn evaluate_batch(&self, mappings: &[Mapping]) -> Vec<Evaluation> {
                self.calls.fetch_add(1, Ordering::SeqCst);
                assert_eq!(mappings.len(), 5, "chunk size is ceil(10 / 2)");
                mappings.iter().map(|m| self.evaluate(m)).collect()
            }
        }

        let (space, _) = space_and_evaluator();
        let mut rng = StdRng::seed_from_u64(6);
        let mappings: Vec<Mapping> = (0..10).map(|_| space.random_mapping(&mut rng)).collect();
        let counting = Arc::new(Counting {
            calls: AtomicUsize::new(0),
        });
        let mut pool = EvalPool::new(Arc::<Counting>::clone(&counting), 2);
        let evals = pool.evaluate_batch(&mappings);
        assert_eq!(evals.len(), 10);
        assert_eq!(counting.calls.load(Ordering::SeqCst), 2);
        for (m, e) in mappings.iter().zip(&evals) {
            assert_eq!(e.primary(), m.active_pes() as f64);
        }
    }

    #[test]
    fn shared_pool_routes_per_job_evaluators() {
        let (space, model_eval) = space_and_evaluator();
        let mut rng = StdRng::seed_from_u64(7);
        let m = space.random_mapping(&mut rng);
        let pes: Arc<dyn CostEvaluator> =
            Arc::new(FnEvaluator::new(|m: &Mapping| m.active_pes() as f64));

        let mut pool = EvalPool::shared(2);
        let a = pool.submit_for(Arc::clone(&model_eval), m.clone());
        let b = pool.submit_for(Arc::clone(&pes), m.clone());
        let mut results: HashMap<u64, Evaluation> = HashMap::new();
        for _ in 0..2 {
            let (id, eval) = pool.recv();
            results.insert(id, eval);
        }
        assert_eq!(results[&a], model_eval.evaluate(&m));
        assert_eq!(results[&b].primary(), m.active_pes() as f64);

        // Batch ids are contiguous and in input order.
        let batch: Vec<Mapping> = (0..4).map(|_| space.random_mapping(&mut rng)).collect();
        let ids = pool.submit_batch_for(Some(Arc::clone(&model_eval)), batch.clone());
        assert_eq!(ids.end - ids.start, 4);
        let mut by_id: HashMap<u64, Evaluation> = HashMap::new();
        for _ in 0..4 {
            let (id, eval) = pool.recv();
            by_id.insert(id, eval);
        }
        for (i, m) in batch.iter().enumerate() {
            assert_eq!(by_id[&(ids.start + i as u64)], model_eval.evaluate(m));
        }
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "no default evaluator")]
    fn shared_pool_without_evaluator_fails_loudly() {
        let (space, _) = space_and_evaluator();
        let mut rng = StdRng::seed_from_u64(8);
        let mut pool = EvalPool::shared(1);
        pool.submit(space.random_mapping(&mut rng));
        let _ = pool.recv();
    }

    #[test]
    fn fn_evaluator_wraps_closures() {
        let (space, _) = space_and_evaluator();
        let mut rng = StdRng::seed_from_u64(3);
        let m = space.random_mapping(&mut rng);
        let eval = FnEvaluator::new(|m: &Mapping| m.active_pes() as f64);
        assert_eq!(eval.evaluate(&m).primary(), m.active_pes() as f64);
        assert_eq!(eval.metrics(), &[OptMetric::Edp]);
    }
}
