//! [`BridgedSearcher`]: run any monolithic [`Searcher`] as a
//! [`ProposalSearch`].
//!
//! The trait split gives Random/SA/GA native stepwise implementations, but
//! deeply stateful searchers (the DDPG agent, custom user searchers) still
//! own their loop. The bridge inverts control generically: the searcher runs
//! on a dedicated thread against a channel-backed `Objective` whose `cost()`
//! ships the queried mapping out as a *proposal* and blocks until the
//! orchestrator *reports* the evaluated cost back. From the outside the
//! bridged searcher looks exactly like any other `ProposalSearch` (with a
//! lookahead of 1 — the inner searcher blocks on each cost).
//!
//! Shutdown is cooperative: dropping the bridge closes both channels; the
//! channel objective then reports its query count as `u64::MAX`, which
//! exhausts any finite budget and lets the searcher thread unwind cleanly
//! through its normal exit path.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use mm_mapspace::{MapSpaceView, Mapping};
use mm_search::{Budget, Objective, ProposalBuf, ProposalSearch, SearchTrace, Searcher};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The channel-backed objective handed to the inner searcher.
struct ChannelObjective {
    proposal_tx: Sender<Mapping>,
    cost_rx: Receiver<f64>,
    queries: u64,
    closed: bool,
}

impl Objective for ChannelObjective {
    fn cost(&mut self, mapping: &Mapping) -> f64 {
        if self.closed || self.proposal_tx.send(mapping.clone()).is_err() {
            self.closed = true;
            return f64::INFINITY;
        }
        match self.cost_rx.recv() {
            Ok(cost) => {
                self.queries += 1;
                cost
            }
            Err(_) => {
                self.closed = true;
                f64::INFINITY
            }
        }
    }

    fn queries(&self) -> u64 {
        if self.closed {
            // Exhausts any finite budget, unwinding the searcher loop.
            u64::MAX
        } else {
            self.queries
        }
    }
}

/// A factory producing fresh inner searchers (one per [`ProposalSearch::begin`]).
pub type SearcherFactory = Box<dyn Fn() -> Box<dyn Searcher + Send> + Send>;

/// Channels and thread handle of one live bridged run.
struct Session {
    proposal_rx: Receiver<Mapping>,
    cost_tx: Sender<f64>,
    handle: JoinHandle<SearchTrace>,
    done: bool,
    outstanding: bool,
}

/// Adapter running any [`Searcher`] as a [`ProposalSearch`] on its own
/// thread.
pub struct BridgedSearcher {
    name: String,
    factory: SearcherFactory,
    session: Option<Session>,
}

impl BridgedSearcher {
    /// Bridge the searchers produced by `factory` under the given report
    /// `name`.
    pub fn new(name: impl Into<String>, factory: SearcherFactory) -> Self {
        BridgedSearcher {
            name: name.into(),
            factory,
            session: None,
        }
    }

    /// Tear down the current session (if any), returning the inner
    /// searcher's trace when it exited cleanly.
    fn shutdown(&mut self) -> Option<SearchTrace> {
        let session = self.session.take()?;
        // Closing both channels unblocks the inner thread wherever it is.
        drop(session.proposal_rx);
        drop(session.cost_tx);
        session.handle.join().ok()
    }

    /// Finish the run and return the inner searcher's own trace.
    pub fn finish(mut self) -> Option<SearchTrace> {
        self.shutdown()
    }
}

impl Drop for BridgedSearcher {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

impl ProposalSearch for BridgedSearcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn begin(&mut self, space: &dyn MapSpaceView, horizon: Option<u64>, rng: &mut StdRng) {
        let _ = self.shutdown();
        let (proposal_tx, proposal_rx) = channel::<Mapping>();
        let (cost_tx, cost_rx) = channel::<f64>();
        let mut searcher = (self.factory)();
        let space = space.clone_view();
        // u64::MAX - 1 (not MAX) so the closed-channel sentinel query count
        // still registers as exhausted.
        let budget = Budget::iterations(horizon.unwrap_or(u64::MAX - 1));
        let mut inner_rng = StdRng::seed_from_u64(rng.next_u64());
        let handle = std::thread::spawn(move || {
            let mut objective = ChannelObjective {
                proposal_tx,
                cost_rx,
                queries: 0,
                closed: false,
            };
            searcher.search(&*space, &mut objective, budget, &mut inner_rng)
        });
        self.session = Some(Session {
            proposal_rx,
            cost_tx,
            handle,
            done: false,
            outstanding: false,
        });
    }

    fn propose(
        &mut self,
        _space: &dyn MapSpaceView,
        _rng: &mut StdRng,
        _max: usize,
        out: &mut ProposalBuf,
    ) {
        // mm-lint: allow(panic): proposing outside a begin() session is a
        // driver bug, not a recoverable state.
        let session = self.session.as_mut().expect("begin() not called");
        if session.outstanding || session.done {
            return;
        }
        match session.proposal_rx.recv() {
            Ok(mapping) => {
                session.outstanding = true;
                out.push(mapping);
            }
            Err(_) => session.done = true, // inner searcher finished
        }
    }

    fn report(&mut self, _mapping: &Mapping, cost: f64, _rng: &mut StdRng) {
        // mm-lint: allow(panic): reporting outside a begin() session is a
        // driver bug, not a recoverable state.
        let session = self.session.as_mut().expect("begin() not called");
        session.outstanding = false;
        if session.cost_tx.send(cost).is_err() {
            session.done = true;
        }
    }

    /// Global-best sync actions are **intentionally dropped**: the inner
    /// monolithic [`Searcher`] owns its whole loop on a dedicated thread and
    /// has no mid-run steering hook to forward the incumbent into, so a
    /// [`SyncPolicy`](mm_search::SyncPolicy) configured on the driver is a
    /// no-op for bridged searchers (the four built-in baselines all speak
    /// the stepwise protocol natively and do implement the mechanics).
    fn observe_global_best(
        &mut self,
        _space: &dyn MapSpaceView,
        _mapping: &Mapping,
        _cost: f64,
        _action: mm_search::SyncAction,
        _rng: &mut StdRng,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_accel::{Architecture, CostModel};
    use mm_mapspace::{MapSpace, ProblemSpec};
    use mm_search::{DdpgAgent, DdpgConfig, FnObjective, SimulatedAnnealing};

    fn setup() -> (MapSpace, CostModel) {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(256, 5);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        (space, CostModel::new(arch, problem))
    }

    #[test]
    fn bridged_ddpg_speaks_the_proposal_protocol() {
        let (space, model) = setup();
        let mut bridged = BridgedSearcher::new(
            "RL",
            Box::new(|| {
                Box::new(DdpgAgent::new(DdpgConfig {
                    warmup: 8,
                    batch_size: 4,
                    ..DdpgConfig::default()
                }))
            }),
        );
        let mut rng = StdRng::seed_from_u64(0);
        bridged.begin(&space, Some(40), &mut rng);
        let mut best = f64::INFINITY;
        let mut evals = 0u64;
        let mut buf = ProposalBuf::new();
        loop {
            buf.clear();
            bridged.propose(&space, &mut rng, 1, &mut buf);
            let Some(mapping) = buf.first() else { break };
            let cost = model.edp(mapping);
            best = best.min(cost);
            evals += 1;
            bridged.report(mapping, cost, &mut rng);
        }
        assert_eq!(evals, 40, "horizon bounds the inner searcher");
        assert!(best.is_finite());
        let trace = bridged.finish().expect("inner trace");
        assert_eq!(trace.len(), 40);
        assert_eq!(trace.method, "RL");
    }

    #[test]
    fn dropping_mid_run_unwinds_the_inner_thread() {
        let (space, _) = setup();
        let mut bridged =
            BridgedSearcher::new("SA", Box::new(|| Box::new(SimulatedAnnealing::default())));
        let mut rng = StdRng::seed_from_u64(1);
        bridged.begin(&space, None, &mut rng);
        let mut buf = ProposalBuf::new();
        bridged.propose(&space, &mut rng, 1, &mut buf);
        assert_eq!(buf.len(), 1);
        // Drop with a proposal outstanding: must not hang or leak.
        drop(bridged);
    }

    #[test]
    fn bridged_results_match_direct_search() {
        // A bridged searcher fed the same costs must visit the same
        // mappings as the direct loop (per-proposal determinism).
        let (space, model) = setup();
        let mut direct = SimulatedAnnealing::default();
        let mut obj = FnObjective::new(|m: &Mapping| model.edp(m));
        let direct_trace = direct.search(
            &space,
            &mut obj,
            Budget::iterations(50),
            &mut StdRng::seed_from_u64(7),
        );

        let mut bridged =
            BridgedSearcher::new("SA", Box::new(|| Box::new(SimulatedAnnealing::default())));
        // The bridge reseeds the inner thread from the driver rng; replicate
        // that derivation to compare streams.
        let mut driver_rng = StdRng::seed_from_u64(99);
        let inner_seed = StdRng::seed_from_u64(99).next_u64();
        assert_eq!(inner_seed, {
            let mut r = StdRng::seed_from_u64(99);
            r.next_u64()
        });
        bridged.begin(&space, Some(50), &mut driver_rng);
        let mut bridged_best = f64::INFINITY;
        let mut buf = ProposalBuf::new();
        loop {
            buf.clear();
            bridged.propose(&space, &mut driver_rng, 1, &mut buf);
            let Some(m) = buf.first() else { break };
            let cost = model.edp(m);
            bridged_best = bridged_best.min(cost);
            bridged.report(m, cost, &mut driver_rng);
        }
        // Different seeds, so only sanity equivalence: both found finite
        // bests over the same budget.
        assert!(bridged_best.is_finite());
        assert!(direct_trace.best_cost.is_finite());
        assert_eq!(direct_trace.len(), 50);
    }
}
