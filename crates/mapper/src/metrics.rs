//! Prioritized optimization metrics, Timeloop-mapper style.
//!
//! Timeloop's mapper is steered by an `optimization-metrics` list — e.g.
//! `[edp]` or `[delay, energy]` — compared lexicographically: the first
//! metric decides, later metrics break (near-)ties. This module provides the
//! same vocabulary resolved against `mm-accel`'s [`CostBreakdown`]:
//!
//! * [`OptMetric::Energy`] — total energy (pJ);
//! * [`OptMetric::Delay`] — execution time (s);
//! * [`OptMetric::Edp`] — energy-delay product (J·s), the paper's headline
//!   objective;
//! * [`OptMetric::LastLevelAccesses`] — total DRAM accesses, a proxy for
//!   off-chip bandwidth pressure.

use mm_accel::{Architecture, CostBreakdown, CostSummary};
use mm_mapspace::mapping::Level;
use serde::{Deserialize, Serialize};

/// One optimization metric, resolvable against a [`CostBreakdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptMetric {
    /// Total energy in picojoules.
    Energy,
    /// Execution time in seconds.
    Delay,
    /// Energy-delay product in joule-seconds.
    Edp,
    /// Total accesses to the last (DRAM) level.
    LastLevelAccesses,
}

impl OptMetric {
    /// All metrics, in the order used for documentation and CLIs.
    pub const ALL: [OptMetric; 4] = [
        OptMetric::Energy,
        OptMetric::Delay,
        OptMetric::Edp,
        OptMetric::LastLevelAccesses,
    ];

    /// Parse a Timeloop-style metric name.
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "energy" => Some(OptMetric::Energy),
            "delay" => Some(OptMetric::Delay),
            "edp" => Some(OptMetric::Edp),
            "last_level_accesses" | "last-level-accesses" => Some(OptMetric::LastLevelAccesses),
            _ => None,
        }
    }

    /// The Timeloop-style name.
    pub fn name(&self) -> &'static str {
        match self {
            OptMetric::Energy => "energy",
            OptMetric::Delay => "delay",
            OptMetric::Edp => "edp",
            OptMetric::LastLevelAccesses => "last_level_accesses",
        }
    }

    /// Resolve this metric from a cost breakdown (lower is better for all).
    pub fn resolve(&self, cost: &CostBreakdown, arch: &Architecture) -> f64 {
        match self {
            OptMetric::Energy => cost.total_energy_pj,
            OptMetric::Delay => cost.delay_s(arch),
            OptMetric::Edp => cost.edp,
            OptMetric::LastLevelAccesses => cost.accesses.total_at(Level::Dram) as f64,
        }
    }

    /// Resolve this metric from the scalar [`CostSummary`] produced by the
    /// allocation-free eval path. Identical values (bit-for-bit) to
    /// [`resolve`](Self::resolve) on the corresponding [`CostBreakdown`].
    pub fn resolve_summary(&self, cost: &CostSummary, arch: &Architecture) -> f64 {
        match self {
            OptMetric::Energy => cost.total_energy_pj,
            OptMetric::Delay => cost.cycles * arch.cycle_time_s(),
            OptMetric::Edp => cost.edp,
            OptMetric::LastLevelAccesses => cost.last_level_accesses as f64,
        }
    }
}

impl std::fmt::Display for OptMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Relative tolerance within which two metric values count as tied and the
/// next metric in the priority list decides.
const TIE_TOLERANCE: f64 = 1e-9;

/// The result of evaluating one mapping: metric values in priority order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Metric values, ordered by the evaluator's `optimization_metrics`
    /// priority list. Lower is better for every metric.
    pub metrics: Vec<f64>,
}

impl Evaluation {
    /// An evaluation with a single metric value.
    pub fn scalar(value: f64) -> Self {
        Evaluation {
            metrics: vec![value],
        }
    }

    /// The highest-priority metric value (what scalar consumers — e.g. the
    /// `ProposalSearch::report` channel — see as "the cost").
    pub fn primary(&self) -> f64 {
        self.metrics.first().copied().unwrap_or(f64::INFINITY)
    }

    /// Lexicographic comparison down the priority list: strictly better on
    /// the first non-tied metric wins; ties (within a relative tolerance)
    /// fall through to the next metric. Equal-on-all-metrics is *not*
    /// better, so first-found wins under deterministic merge orders.
    pub fn better_than(&self, other: &Evaluation) -> bool {
        for (a, b) in self.metrics.iter().zip(&other.metrics) {
            let scale = a.abs().max(b.abs()).max(f64::MIN_POSITIVE);
            if (a - b).abs() > TIE_TOLERANCE * scale {
                return a < b;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_accel::{Architecture, CostModel};
    use mm_mapspace::{Mapping, ProblemSpec};

    #[test]
    fn parse_roundtrips_names() {
        for m in OptMetric::ALL {
            assert_eq!(OptMetric::parse(m.name()), Some(m));
        }
        assert_eq!(
            OptMetric::parse("Last-Level-Accesses"),
            Some(OptMetric::LastLevelAccesses)
        );
        assert_eq!(OptMetric::parse("bogus"), None);
    }

    #[test]
    fn metrics_resolve_against_cost_breakdown() {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(128, 5);
        let model = CostModel::new(arch.clone(), problem.clone());
        let cost = model.evaluate(&Mapping::minimal(&problem));
        let energy = OptMetric::Energy.resolve(&cost, &arch);
        let delay = OptMetric::Delay.resolve(&cost, &arch);
        let edp = OptMetric::Edp.resolve(&cost, &arch);
        let dram = OptMetric::LastLevelAccesses.resolve(&cost, &arch);
        assert!(energy > 0.0 && delay > 0.0 && edp > 0.0 && dram > 0.0);
        // EDP is energy (J) × delay (s).
        assert!((edp - energy * 1e-12 * delay).abs() / edp < 1e-9);
    }

    #[test]
    fn lexicographic_comparison_with_tie_break() {
        let a = Evaluation {
            metrics: vec![1.0, 5.0],
        };
        let b = Evaluation {
            metrics: vec![2.0, 1.0],
        };
        assert!(a.better_than(&b));
        assert!(!b.better_than(&a));

        // Primary tied (within tolerance): the secondary decides.
        let c = Evaluation {
            metrics: vec![1.0 + 1e-12, 4.0],
        };
        assert!(c.better_than(&a));
        assert!(!a.better_than(&a), "equal is not strictly better");
        assert_eq!(a.primary(), 1.0);
        assert_eq!(Evaluation::scalar(3.5).primary(), 3.5);
    }
}
