//! # mm-mapper
//!
//! A parallel mapper-orchestration engine for the Mind Mappings
//! reproduction, following the architecture proven by Timeloop's mapper and
//! pytimeloop's `AcceleratorPool`: mapping *proposal* is decoupled from
//! mapping *evaluation*, so both can scale independently.
//!
//! The pieces:
//!
//! * [`CostEvaluator`] / [`ModelEvaluator`] — a thread-safe (`&self`) cost
//!   function over mappings, with a prioritized [`OptMetric`] list
//!   (`energy`, `delay`, `edp`, `last_level_accesses`) resolved against
//!   `mm-accel`'s `CostBreakdown` and compared lexicographically
//!   ([`Evaluation`]);
//! * [`EvalPool`] — a `std::thread` worker pool evaluating batches of
//!   mappings concurrently over channels;
//! * [`run_pipelined`] — drives any `ProposalSearch` (the stepwise protocol
//!   from `mm-search`'s trait split) against an [`EvalPool`] with proposals
//!   pipelined ahead of pending evaluations;
//! * [`BridgedSearcher`] — adapts any monolithic `Searcher` (e.g. the DDPG
//!   agent) to the stepwise protocol by inverting control on a dedicated
//!   thread;
//! * [`Mapper`] — the driver: partitions the search into deterministically
//!   seeded logical shards (optionally slicing the map space itself into
//!   pairwise-disjoint subspaces via `MapSpace::shard`), executes them on a
//!   worker-thread pool with a deterministic or work-stealing budget
//!   schedule, syncs a shared best mapping every
//!   [`MapperConfig::sync_interval`] evaluations under a configurable
//!   [`SyncPolicy`] (re-anchor always / on stall / with annealed
//!   probability — exchanged at deterministic barrier rounds under the
//!   deterministic schedule), and terminates on Timeloop-style
//!   [`TerminationPolicy`] knobs (`search_size`, `victory_condition`,
//!   `timeout`).
//!
//! ```
//! use std::sync::Arc;
//! use mm_accel::{Architecture, CostModel};
//! use mm_mapper::{Mapper, MapperConfig, ModelEvaluator, TerminationPolicy};
//! use mm_mapspace::{MapSpace, ProblemSpec};
//! use mm_search::RandomSearch;
//!
//! let arch = Architecture::example();
//! let problem = ProblemSpec::conv1d(256, 5);
//! let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
//! let evaluator = Arc::new(ModelEvaluator::edp(CostModel::new(arch, problem)));
//!
//! let mapper = Mapper::new(MapperConfig {
//!     threads: 2,
//!     seed: 7,
//!     termination: TerminationPolicy::search_size(200),
//!     ..MapperConfig::default()
//! });
//! let report = mapper.run(&space, evaluator, |_| Box::new(RandomSearch::new()));
//! assert_eq!(report.total_evaluations, 200);
//! assert!(space.is_member(report.best_mapping.as_ref().unwrap()));
//! ```

pub mod bridge;
pub mod eval;
pub mod mapper;
pub mod metrics;
pub mod pipeline;
pub mod policy;

pub use bridge::{BridgedSearcher, SearcherFactory};
pub use eval::{CostEvaluator, EvalPool, EvaluatorObjective, FnEvaluator, ModelEvaluator};
pub use mapper::{
    derive_stream_seed, Mapper, MapperConfig, MapperReport, MapperSchedule, ShardReport,
};
pub use metrics::{Evaluation, OptMetric};
pub use pipeline::{pipeline_depth, run_pipelined, MIN_PIPELINE_DEPTH};
pub use policy::{split_evenly, StopReason, TerminationPolicy};
// The sync-policy vocabulary is defined next to the searchers (mm-search)
// and re-exported here because `MapperConfig::sync` is its main consumer.
pub use mm_search::{SyncAction, SyncPolicy};
