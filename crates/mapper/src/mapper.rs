//! The [`Mapper`] driver: multi-threaded search over sharded map spaces.
//!
//! Follows the proven Timeloop-mapper architecture, with the map space
//! partitioned into **logical shards** executed by a pool of **worker
//! threads** — the two are decoupled:
//!
//! * [`MapperConfig::shards`] fixes how many independent search units exist
//!   (default: one per thread). Each shard owns a deterministically derived
//!   RNG stream, its own [`ProposalSearch`] instance, and — when
//!   [`MapperConfig::shard_space`] is set — a pairwise-disjoint slice of the
//!   map space itself ([`MapSpace::shard`]), so shards provably never cover
//!   the same mappings.
//! * [`MapperConfig::threads`] fixes how many OS threads execute them.
//!   Workers pull shards off a queue; shard results are merged in shard
//!   order.
//!
//! # Scheduling and determinism
//!
//! [`MapperSchedule::Deterministic`] gives every shard its exact
//! [`split_evenly`](crate::policy::split_evenly) share of `search_size` up
//! front. Shard `s` of a run with seed `q` always performs the same
//! evaluations, so [`MapperReport::canonical_string`] is **byte-identical
//! across worker counts** — 1 thread or 16, same report.
//!
//! [`MapperSchedule::WorkStealing`] pools `search_size` in a shared ledger:
//! shards claim budget in batches as they go, and a shard whose searcher
//! exhausts (or declares victory) returns its unclaimed budget for the
//! remaining shards to steal. The full budget is spent even when shards
//! finish unevenly — at the cost of run-to-run determinism under real
//! concurrency.
//!
//! # Global-best synchronization
//!
//! [`MapperConfig::sync`] installs a [`SyncPolicy`]: shards periodically
//! observe the shared incumbent and re-anchor on it (`Anchor`), restart
//! from it when stalled (`Restart`), or adopt it with an annealed
//! probability (`Annealed`). Under [`MapperSchedule::Deterministic`] the
//! exchange happens at **barrier rounds**: every shard runs exactly
//! `sync_interval` evaluations, then all shards rendezvous, merge their
//! bests in shard order, and apply the policy — so the incumbent each
//! shard sees (and hence the whole report) is *independent of worker
//! count*, preserving the byte-identical
//! [`MapperReport::canonical_string`] guarantee under every policy. Under
//! [`MapperSchedule::WorkStealing`] shards snapshot the live shared best
//! instead (no barriers, not deterministic under real concurrency).
//!
//! Wall-clock `timeout` still intentionally trades determinism away.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mm_mapspace::{MapSpace, MapSpaceView, Mapping, ShardAxisKind};
use mm_search::{
    merge_shard_convergence, ConvergenceTrace, ProposalBuf, ProposalSearch, SearchTrace,
    SyncAction, SyncPolicy, SyncState,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::eval::CostEvaluator;
use crate::metrics::Evaluation;
use crate::policy::{StopReason, TerminationPolicy};

/// How shard budgets are scheduled onto worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MapperSchedule {
    /// Every shard gets its exact `search_size` share up front. Preserves
    /// the per-shard replay guarantee: the canonical report is byte-identical
    /// across worker counts.
    #[default]
    Deterministic,
    /// Shards claim evaluation budget from a shared ledger in batches; idle
    /// capacity (an exhausted or victorious shard's leftover budget) is
    /// stolen by unfinished shards. Spends the whole budget under
    /// heterogeneous searchers, but is not deterministic under concurrency.
    WorkStealing,
}

/// Configuration of a [`Mapper`] run.
#[derive(Debug, Clone)]
pub struct MapperConfig {
    /// Number of worker threads executing shards.
    pub threads: usize,
    /// Number of logical search shards (`None`: one per thread). Shard
    /// results and RNG streams depend only on the shard index, never on
    /// which thread runs the shard.
    pub shards: Option<usize>,
    /// Partition the map space itself across shards via [`MapSpace::shard`]
    /// (pairwise-disjoint slices of the mixed-radix loop-order/parallelism/
    /// tiling axis product) instead of separating shards by RNG stream
    /// alone. Shard counts beyond the space's
    /// [`MapSpace::shard_capacity`] are clamped.
    pub shard_space: bool,
    /// Restrict [`shard_space`](Self::shard_space) partitions to this
    /// subset of the axis product (`None`, the default: the full product —
    /// L2 order × L1 order × parallelism split × tile prefix). Shard counts
    /// clamp to the subset's [`MapSpace::shard_capacity_for`].
    pub shard_axes: Option<Vec<ShardAxisKind>>,
    /// Shard-aware horizon hint (off by default): size each shard's
    /// schedule-based searchers (SA cooling, GA generations) to the
    /// shard-scaled horizon ([`MapSpaceView::horizon_hint`]) instead of the
    /// raw per-shard budget, so searchers confined to a slice stop tuning
    /// their schedules as if they owned the full space. Purely a function
    /// of shard-local state, so the deterministic-schedule replay guarantee
    /// is preserved.
    pub shard_horizon: bool,
    /// Budget scheduling across shards.
    pub schedule: MapperSchedule,
    /// Master seed; per-shard streams are derived deterministically.
    pub seed: u64,
    /// Evaluations between sync points: a shard publishing its best to the
    /// shared global best, and — with [`MapperConfig::sync`] enabled — the
    /// cadence at which the [`SyncPolicy`] is consulted (the barrier-round
    /// length under the deterministic schedule).
    pub sync_interval: u64,
    /// Maximum proposals a shard requests per driver iteration (bounded
    /// further by the searcher's own lookahead).
    pub batch_size: usize,
    /// When to stop.
    pub termination: TerminationPolicy,
    /// How shards re-anchor on the shared global best ([`SyncPolicy::Off`]:
    /// never — fully independent shards). Under
    /// [`MapperSchedule::Deterministic`] with a `search_size` budget the
    /// policy runs at barrier rounds and preserves the byte-identical
    /// canonical report across worker counts; under
    /// [`MapperSchedule::WorkStealing`] (or unbounded budgets) shards
    /// snapshot the live shared best instead, which is not deterministic
    /// under real concurrency.
    pub sync: SyncPolicy,
    /// Record a full per-shard [`SearchTrace`] (costs mapping clones per
    /// evaluation; leave off for throughput measurements).
    pub record_traces: bool,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            threads: 1,
            shards: None,
            shard_space: false,
            shard_axes: None,
            shard_horizon: false,
            schedule: MapperSchedule::Deterministic,
            seed: 0,
            sync_interval: 64,
            batch_size: 16,
            termination: TerminationPolicy::search_size(10_000),
            sync: SyncPolicy::Off,
            record_traces: false,
        }
    }
}

/// What one search shard did.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Evaluations performed.
    pub evaluations: u64,
    /// Best mapping found by this shard and its metrics.
    pub best: Option<(Mapping, Evaluation)>,
    /// Why the shard stopped.
    pub stop: StopReason,
    /// Full trace, when [`MapperConfig::record_traces`] is set.
    pub trace: Option<SearchTrace>,
    /// Best-so-far convergence curve indexed by this shard's evaluation
    /// count: recorded when [`MapperConfig::record_traces`] is set *or*
    /// telemetry is enabled (improvement points only — no mapping clones,
    /// no clock reads — so it is cheap enough for the parallel hot path).
    pub convergence: Option<ConvergenceTrace>,
}

/// The result of a [`Mapper`] run.
#[derive(Debug, Clone)]
pub struct MapperReport {
    /// Globally best mapping (merged across shards in shard order).
    pub best_mapping: Option<Mapping>,
    /// Metrics of the best mapping, in the evaluator's priority order.
    pub best_metrics: Option<Evaluation>,
    /// Total evaluations across all shards.
    pub total_evaluations: u64,
    /// Wall-clock duration of the run in seconds.
    pub wall_time_s: f64,
    /// Aggregate evaluation throughput.
    pub evals_per_sec: f64,
    /// The global-best sync policy the run used (part of the canonical
    /// identity: distinct policies are distinct search configurations).
    pub sync: SyncPolicy,
    /// Per-shard details, indexed by shard.
    pub shards: Vec<ShardReport>,
    /// The Figures 5/6-style best-so-far convergence curve, merged across
    /// shards in the canonical round-robin order
    /// ([`merge_shard_convergence`]). Present when per-shard convergence
    /// was recorded (traces requested or telemetry on); deterministic
    /// across worker counts under [`MapperSchedule::Deterministic`], but —
    /// like `telemetry` — excluded from
    /// [`canonical_string`](Self::canonical_string) so levels that do not
    /// record it replay byte-identically.
    pub convergence: Option<ConvergenceTrace>,
    /// Telemetry recorded during the run (`None` when `MM_TELEMETRY` is
    /// off). Excluded from [`canonical_string`](Self::canonical_string),
    /// like the wall-clock fields, so instrumentation never perturbs the
    /// deterministic replay contract.
    pub telemetry: Option<mm_telemetry::TelemetrySnapshot>,
}

impl MapperReport {
    /// The best primary-metric value, or ∞ when nothing was evaluated.
    pub fn best_cost(&self) -> f64 {
        self.best_metrics
            .as_ref()
            .map_or(f64::INFINITY, Evaluation::primary)
    }

    /// Render the deterministic portion of the report — everything except
    /// the wall-clock fields — as a stable string. Under
    /// [`MapperSchedule::Deterministic`] with a `search_size` budget (and
    /// no wall-clock `timeout`), the same seed and shard count produce
    /// byte-identical output **regardless of worker count**, under *every*
    /// [`SyncPolicy`] — policy-enabled runs exchange incumbents at barrier
    /// rounds whose content is worker-count independent.
    pub fn canonical_string(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "sync={}", self.sync.canonical_string());
        for s in &self.shards {
            let _ = writeln!(
                out,
                "shard={} evals={} stop={:?} metrics={:?} mapping={:?}",
                s.shard,
                s.evaluations,
                s.stop,
                s.best.as_ref().map(|(_, e)| &e.metrics),
                s.best.as_ref().map(|(m, _)| m),
            );
        }
        let _ = writeln!(
            out,
            "total_evaluations={} best_metrics={:?} best_mapping={:?}",
            self.total_evaluations,
            self.best_metrics.as_ref().map(|e| &e.metrics),
            self.best_mapping,
        );
        out
    }
}

/// Shared best-so-far mapping, updated at sync intervals.
#[derive(Default)]
struct GlobalBest {
    slot: Mutex<Option<(Mapping, Evaluation)>>,
}

impl GlobalBest {
    fn offer(&self, mapping: &Mapping, eval: &Evaluation) {
        // Poison recovery: the slot is a plain Option that is only ever
        // replaced whole, so it stays valid if a holder panicked.
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        let better = match slot.as_ref() {
            None => true,
            Some((_, incumbent)) => eval.better_than(incumbent),
        };
        if better {
            *slot = Some((mapping.clone(), eval.clone()));
        }
    }

    fn snapshot(&self) -> Option<(Mapping, Evaluation)> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// The shared evaluation-budget ledger of [`MapperSchedule::WorkStealing`]:
/// shards claim budget in batches and return what they cannot use.
///
/// `outstanding` tracks budget claimed but not yet evaluated, so a shard
/// finding the ledger dry waits for in-flight grants (which may be refunded
/// by an exhausting peer) instead of stopping early and losing budget.
struct BudgetLedger {
    remaining: AtomicU64,
    outstanding: AtomicU64,
}

impl BudgetLedger {
    fn new(total: u64) -> Self {
        BudgetLedger {
            remaining: AtomicU64::new(total),
            outstanding: AtomicU64::new(0),
        }
    }

    /// Claim up to `want` evaluations. Returns 0 only when the ledger is dry
    /// *and* no peer holds claimed-but-unused budget that could be refunded.
    fn claim(&self, want: u64) -> u64 {
        loop {
            let cur = self.remaining.load(Ordering::Acquire);
            let take = want.min(cur);
            if take > 0 {
                // Raise `outstanding` *before* taking from `remaining`: a
                // peer that sees our decremented `remaining` (Acquire load
                // pairing with the AcqRel exchange) is then guaranteed to
                // also see the outstanding balance and wait for the refund
                // instead of quitting early.
                self.outstanding.fetch_add(take, Ordering::AcqRel);
                if self
                    .remaining
                    .compare_exchange(cur, cur - take, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    static GRANTS: std::sync::OnceLock<Arc<mm_telemetry::Counter>> =
                        std::sync::OnceLock::new();
                    static GRANTED: std::sync::OnceLock<Arc<mm_telemetry::Counter>> =
                        std::sync::OnceLock::new();
                    GRANTS
                        .get_or_init(|| mm_telemetry::counter("mapper.ledger.grants"))
                        .bump(1);
                    GRANTED
                        .get_or_init(|| mm_telemetry::counter("mapper.ledger.granted_evals"))
                        .bump(take);
                    mm_telemetry::event("mapper.ledger.grant", || {
                        format!("evals={take} remaining={}", cur - take)
                    });
                    return take;
                }
                // Lost the race: put the optimistic claim back.
                self.outstanding.fetch_sub(take, Ordering::AcqRel);
                continue;
            }
            if self.outstanding.load(Ordering::Acquire) == 0 {
                // Refunds restore `remaining` before clearing `outstanding`
                // (both ends Release/Acquire), so after observing a zero
                // outstanding balance a re-read of `remaining` sees every
                // refund that zeroed it: still empty means truly dry.
                if self.remaining.load(Ordering::Acquire) == 0 {
                    return 0;
                }
                continue;
            }
            // A peer still holds budget: it will be spent or refunded.
            std::thread::yield_now();
        }
    }

    /// Mark one claimed evaluation as spent.
    fn consume(&self) {
        self.outstanding.fetch_sub(1, Ordering::AcqRel);
    }

    /// Return unused claimed budget for other shards to steal.
    fn refund(&self, unused: u64) {
        if unused > 0 {
            // Order matters: restore `remaining` first so a peer that sees
            // `outstanding` hit zero (Acquire) also sees the refunded
            // budget — see the dry-check in `claim`.
            self.remaining.fetch_add(unused, Ordering::AcqRel);
            self.outstanding.fetch_sub(unused, Ordering::AcqRel);
            static REFUNDS: std::sync::OnceLock<Arc<mm_telemetry::Counter>> =
                std::sync::OnceLock::new();
            static REFUNDED: std::sync::OnceLock<Arc<mm_telemetry::Counter>> =
                std::sync::OnceLock::new();
            REFUNDS
                .get_or_init(|| mm_telemetry::counter("mapper.ledger.refunds"))
                .bump(1);
            REFUNDED
                .get_or_init(|| mm_telemetry::counter("mapper.ledger.refunded_evals"))
                .bump(unused);
            mm_telemetry::event("mapper.ledger.refund", || format!("evals={unused}"));
        }
    }
}

/// Where a shard's evaluation budget comes from.
#[derive(Clone, Copy)]
enum BudgetSource<'a> {
    /// A fixed share granted up front (`None` = unbounded by search size).
    Fixed(Option<u64>),
    /// Batched claims against the shared work-stealing ledger.
    Ledger(&'a BudgetLedger),
}

/// Deterministic RNG-stream seed derivation (SplitMix64 over seed ⊕ index):
/// stream `i` of master seed `s` is always the same, and distinct indices
/// give decorrelated streams. Used for the mapper's per-shard streams and
/// exported for any orchestrator needing the same guarantee (e.g.
/// `mm-serve`'s per-job streams).
pub fn derive_stream_seed(master: u64, index: usize) -> u64 {
    shard_seed(master, index)
}

/// Deterministic per-shard seed derivation (SplitMix64 over seed ⊕ index).
fn shard_seed(master: u64, shard: usize) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The multi-threaded mapper orchestration engine.
#[derive(Debug, Clone, Default)]
pub struct Mapper {
    config: MapperConfig,
}

impl Mapper {
    /// Create a mapper with the given configuration.
    pub fn new(config: MapperConfig) -> Self {
        Mapper { config }
    }

    /// The configuration.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// The number of logical shards a run over `space` will use (the
    /// configured count, clamped to the space's shard capacity when
    /// [`MapperConfig::shard_space`] is set).
    pub fn effective_shards(&self, space: &MapSpace) -> usize {
        let shards = self.config.shards.unwrap_or(self.config.threads).max(1);
        if self.config.shard_space {
            match &self.config.shard_axes {
                Some(kinds) => space.clamp_shard_count_for(kinds, shards),
                None => space.clamp_shard_count(shards),
            }
        } else {
            shards
        }
    }

    /// Run the search: `factory(s)` builds the searcher for shard `s`
    /// (typically identical searchers, diverging through their derived RNG
    /// streams and — with [`MapperConfig::shard_space`] — their disjoint
    /// map-space slices), `evaluator` scores proposals.
    ///
    /// # Panics
    ///
    /// Panics if the termination policy is unbounded (no `search_size`,
    /// `victory_condition`, or `timeout`) — such a run would never end.
    pub fn run(
        &self,
        space: &MapSpace,
        evaluator: Arc<dyn CostEvaluator>,
        mut factory: impl FnMut(usize) -> Box<dyn ProposalSearch>,
    ) -> MapperReport {
        assert!(
            self.config.termination.is_bounded(),
            "unbounded termination policy: set search_size, victory_condition, or timeout"
        );
        let threads = self.config.threads.max(1);
        let shards = self.effective_shards(space);

        // Per-shard views: disjoint slices of the space when sharding the
        // space itself, otherwise the full space per shard (RNG-stream
        // sharding only).
        let views: Vec<Box<dyn MapSpaceView>> = (0..shards)
            .map(|s| {
                if self.config.shard_space && shards > 1 {
                    match &self.config.shard_axes {
                        Some(kinds) => {
                            Box::new(space.shard_with(kinds, s, shards)) as Box<dyn MapSpaceView>
                        }
                        None => Box::new(space.shard(s, shards)) as Box<dyn MapSpaceView>,
                    }
                } else {
                    Box::new(space.clone()) as Box<dyn MapSpaceView>
                }
            })
            .collect();
        let global = GlobalBest::default();
        let stop = AtomicBool::new(false);
        // At the spans level the whole run is one span on the "mapper"
        // track (dropped before the snapshot so it lands in the report).
        let run_span = mm_telemetry::span_enabled()
            .then(|| mm_telemetry::track("mapper"))
            .and_then(|t| t.span("mapper.run"));
        let start = Instant::now();

        let mut runs: Vec<ShardRun> = (0..shards)
            .map(|s| ShardRun::start(s, shards, &self.config, &*views[s], factory(s)))
            .collect();
        let workers = threads.min(shards).max(1);

        // Policy-enabled deterministic runs exchange incumbents at barrier
        // rounds, which keeps the canonical report worker-count independent;
        // everything else drives each shard to completion in one go, with
        // live (racy) snapshots of the shared best when a policy is on.
        let barrier_sync = self.config.sync.is_enabled()
            && self.config.schedule == MapperSchedule::Deterministic
            && self.config.sync_interval > 0
            && self.config.termination.search_size.is_some()
            && shards > 1;

        let mut runs = if barrier_sync {
            run_barrier_rounds(
                &self.config,
                runs,
                workers,
                &evaluator,
                &global,
                &stop,
                start,
            )
        } else {
            // Phase 1 — every shard runs on its exact `split_evenly` share
            // (identical under both schedules, so work stealing degenerates
            // to the deterministic schedule when shards finish evenly).
            let total = self.config.termination.search_size;
            for run in &mut runs {
                run.grant = if total.is_some() {
                    self.config
                        .termination
                        .per_shard_search_size(run.shard, shards)
                } else {
                    None
                };
                run.live_sync = self.config.sync.is_enabled();
            }
            let (mut runs, surplus) = execute_queue(
                &self.config,
                runs,
                None,
                workers,
                &evaluator,
                &global,
                &stop,
                start,
            );

            // Phase 2 (work stealing only) — leftover budget from shards
            // that exhausted or declared victory early is pooled in a
            // shared ledger and stolen by the shards still willing to
            // search.
            if self.config.schedule == MapperSchedule::WorkStealing
                && surplus > 0
                && !stop.load(Ordering::Relaxed)
            {
                let (willing, done): (Vec<ShardRun>, Vec<ShardRun>) = runs
                    .into_iter()
                    .partition(|r| r.stop_reason == StopReason::SearchSize);
                let mut finished = done;
                if willing.is_empty() {
                    runs = finished;
                } else {
                    let ledger = BudgetLedger::new(surplus);
                    let (stolen, _) = execute_queue(
                        &self.config,
                        willing,
                        Some(&ledger),
                        workers,
                        &evaluator,
                        &global,
                        &stop,
                        start,
                    );
                    finished.extend(stolen);
                    runs = finished;
                }
            }
            runs
        };
        runs.sort_by_key(|r| r.shard);

        let reports: Vec<ShardReport> = runs.into_iter().map(ShardRun::finish).collect();
        drop(run_span);

        let wall_time_s = start.elapsed().as_secs_f64();
        let total_evaluations: u64 = reports.iter().map(|r| r.evaluations).sum();
        // Deterministic merge: shard order, strictly-better-wins.
        let mut best: Option<(Mapping, Evaluation)> = None;
        for report in &reports {
            if let Some((mapping, eval)) = &report.best {
                let take = match best.as_ref() {
                    None => true,
                    Some((_, incumbent)) => eval.better_than(incumbent),
                };
                if take {
                    best = Some((mapping.clone(), eval.clone()));
                }
            }
        }
        let (best_mapping, best_metrics) = match best {
            Some((m, e)) => (Some(m), Some(e)),
            None => (None, None),
        };
        // Merge the per-shard convergence curves (shard order, canonical
        // round-robin interleave) when every shard recorded one.
        let convergence = reports
            .iter()
            .map(|r| r.convergence.clone())
            .collect::<Option<Vec<ConvergenceTrace>>>()
            .filter(|t| !t.is_empty())
            .map(|t| merge_shard_convergence(&t));
        MapperReport {
            best_mapping,
            best_metrics,
            total_evaluations,
            wall_time_s,
            evals_per_sec: if wall_time_s > 0.0 {
                total_evaluations as f64 / wall_time_s
            } else {
                0.0
            },
            sync: self.config.sync,
            shards: reports,
            convergence,
            telemetry: mm_telemetry::snapshot_if_enabled(),
        }
    }
}

/// Drive every shard through barrier-synchronized rounds of
/// `sync_interval` evaluations: run one round of each live shard (on any
/// number of workers), rendezvous, merge the per-shard bests *in shard
/// order*, and let each still-live shard apply the [`SyncPolicy`] to the
/// merged incumbent. Each round's work depends only on shard-local state
/// and the (deterministic) barrier incumbent, so the resulting reports are
/// byte-identical across worker counts.
fn run_barrier_rounds<'a>(
    config: &MapperConfig,
    runs: Vec<ShardRun<'a>>,
    workers: usize,
    evaluator: &Arc<dyn CostEvaluator>,
    global: &GlobalBest,
    stop: &AtomicBool,
    start: Instant,
) -> Vec<ShardRun<'a>> {
    let shards = runs.len();
    let sync_track = mm_telemetry::span_enabled().then(|| mm_telemetry::track("mapper"));
    // Remaining reserved share per shard (exact `split_evenly` split).
    let mut remaining: Vec<u64> = (0..shards)
        .map(|s| {
            config
                .termination
                .per_shard_search_size(s, shards)
                .unwrap_or(0)
        })
        .collect();
    let mut retired: Vec<ShardRun<'a>> = Vec::new();
    let mut live = runs;

    while !live.is_empty() {
        for run in &mut live {
            run.grant = Some(remaining[run.shard].min(config.sync_interval));
        }
        let (mut round, _) =
            execute_queue(config, live, None, workers, evaluator, global, stop, start);
        round.sort_by_key(|r| r.shard);

        // Account the spent budget; a shard retires when it stopped for any
        // reason other than exhausting its round grant, or when its share
        // is gone.
        let mut next_live: Vec<ShardRun<'a>> = Vec::new();
        for run in round {
            let spent = run.grant.unwrap_or(0).saturating_sub(run.leftover);
            remaining[run.shard] = remaining[run.shard].saturating_sub(spent);
            let done = run.stop_reason != StopReason::SearchSize || remaining[run.shard] == 0;
            if done {
                retired.push(run);
            } else {
                next_live.push(run);
            }
        }
        if next_live.is_empty() || stop.load(Ordering::Relaxed) {
            retired.extend(next_live);
            break;
        }

        // Barrier: merge all shards' bests in shard order
        // (strictly-better-wins, so ties resolve to the lowest shard index
        // — worker-count independent) and deliver the incumbent.
        let _round_span = sync_track
            .as_ref()
            .and_then(|t| t.span("mapper.sync_round"));
        let mut by_shard: Vec<Option<&(Mapping, Evaluation)>> = vec![None; shards];
        for run in retired.iter().chain(next_live.iter()) {
            by_shard[run.shard] = run.best.as_ref();
        }
        let mut incumbent: Option<(Mapping, Evaluation)> = None;
        for best in by_shard.into_iter().flatten() {
            let take = match incumbent.as_ref() {
                None => true,
                Some((_, reigning)) => best.1.better_than(reigning),
            };
            if take {
                incumbent = Some(best.clone());
            }
        }
        for run in &mut next_live {
            run.sync_point(config, incumbent.as_ref());
        }
        static ROUNDS: std::sync::OnceLock<Arc<mm_telemetry::Counter>> = std::sync::OnceLock::new();
        ROUNDS
            .get_or_init(|| mm_telemetry::counter("mapper.sync_rounds"))
            .bump(1);
        mm_telemetry::event("mapper.sync_round", || {
            format!(
                "live={} incumbent={:?}",
                next_live.len(),
                incumbent.as_ref().map(|(_, e)| e.primary())
            )
        });
        live = next_live;
    }
    retired
}

/// One shard's live search state, carried across scheduling phases so a
/// work-stealing continuation resumes the same searcher, RNG stream, trace,
/// and victory counter exactly where the reserved-budget phase stopped.
struct ShardRun<'a> {
    shard: usize,
    space: &'a dyn MapSpaceView,
    searcher: Box<dyn ProposalSearch>,
    rng: StdRng,
    trace: Option<SearchTrace>,
    /// Improvement-only convergence recorder (traces requested or
    /// telemetry on); a u64 bump plus one comparison per evaluation.
    convergence: Option<ConvergenceTrace>,
    /// This shard's span track (`mapper.shard{N}`), interned only at the
    /// spans level. Only this shard's driving thread touches it, so its
    /// span sequence is deterministic under the deterministic schedule.
    track: Option<Arc<mm_telemetry::Track>>,
    best: Option<(Mapping, Evaluation)>,
    evaluations: u64,
    since_improvement: u64,
    stop_reason: StopReason,
    /// Reserved budget this shard could not use (exhausted/victory), to be
    /// pooled for stealing.
    leftover: u64,
    /// Fixed evaluation grant for the next [`drive`](Self::drive) call
    /// (`None` = unbounded by search size); ignored when driving against a
    /// work-stealing ledger.
    grant: Option<u64>,
    /// Apply the [`SyncPolicy`] against live snapshots of the shared best
    /// at in-drive sync points (the non-barrier modes).
    live_sync: bool,
    /// Total per-shard budget estimate, for the annealed policy's progress.
    horizon: Option<u64>,
    /// Stall bookkeeping (consecutive non-improving sync points) consumed
    /// by [`SyncPolicy::decide`].
    sync_state: SyncState,
}

impl<'a> ShardRun<'a> {
    /// Seed the shard's RNG stream and begin its searcher.
    fn start(
        shard: usize,
        shards: usize,
        config: &MapperConfig,
        space: &'a dyn MapSpaceView,
        mut searcher: Box<dyn ProposalSearch>,
    ) -> Self {
        // Horizon estimate for schedule-based searchers (SA cooling): the
        // exact share under the deterministic schedule, the even-split
        // estimate under work stealing — scaled to the shard's share of the
        // space when the shard-aware hint is on (progress accounting for
        // the sync policy keeps using the raw share).
        let horizon = config.termination.per_shard_search_size(shard, shards);
        let begin_horizon = if config.shard_horizon {
            horizon.map(|h| space.horizon_hint(h))
        } else {
            horizon
        };
        let mut rng = StdRng::seed_from_u64(shard_seed(config.seed, shard));
        searcher.begin(space, begin_horizon, &mut rng);
        let trace = config
            .record_traces
            .then(|| SearchTrace::new(searcher.name()));
        let convergence =
            (config.record_traces || mm_telemetry::enabled()).then(ConvergenceTrace::new);
        let track = mm_telemetry::span_enabled()
            .then(|| mm_telemetry::track(&format!("mapper.shard{shard}")));
        ShardRun {
            shard,
            space,
            searcher,
            rng,
            trace,
            convergence,
            track,
            best: None,
            evaluations: 0,
            since_improvement: 0,
            stop_reason: StopReason::SearchSize,
            leftover: 0,
            grant: None,
            live_sync: false,
            horizon,
            sync_state: SyncState::new(),
        }
    }

    /// One sync point: update the stall counter, consult the policy, and —
    /// when it acts — hand the incumbent to the searcher. Consumes only
    /// shard-local state (plus the incumbent itself), so a driver that
    /// supplies deterministic incumbents gets deterministic behaviour.
    fn sync_point(&mut self, config: &MapperConfig, incumbent: Option<&(Mapping, Evaluation)>) {
        let Some((mapping, eval)) = incumbent else {
            return;
        };
        let _span = self.track.as_ref().and_then(|t| t.span("shard.sync"));
        let own = self.best.as_ref().map(|(_, e)| e.primary());
        let progress = match self.horizon {
            Some(0) | None => 0.0,
            Some(h) => self.evaluations as f64 / h as f64,
        };
        let Some(action) = self
            .sync_state
            .decide(&config.sync, own, progress, &mut self.rng)
        else {
            return;
        };
        // Adopting your own (or a worse) incumbent is a no-op by intent:
        // Adopt means "re-anchor on a strictly better peer". Restart fires
        // regardless — warm-restarting a stalled shard from its own best is
        // exactly the classic restart heuristic.
        let strictly_better = match self.best.as_ref() {
            None => true,
            Some((_, own_eval)) => eval.better_than(own_eval),
        };
        if action == SyncAction::Adopt && !strictly_better {
            return;
        }
        self.searcher.observe_global_best(
            self.space,
            mapping,
            eval.primary(),
            action,
            &mut self.rng,
        );
    }

    /// Drive the shard against `budget` until a stop criterion fires:
    /// propose → evaluate inline → report, with periodic global-best sync.
    fn drive(
        &mut self,
        config: &MapperConfig,
        evaluator: &Arc<dyn CostEvaluator>,
        budget: BudgetSource<'_>,
        global: &GlobalBest,
        stop: &AtomicBool,
        start: Instant,
    ) {
        let policy = &config.termination;
        // One span per drive call: the shard occupying a worker.
        let _drive_span = self.track.as_ref().and_then(|t| t.span("shard.drive"));
        let mut buf = ProposalBuf::new();
        // Evaluations this shard may still perform without consulting its
        // budget source again.
        let mut granted: u64 = match budget {
            BudgetSource::Fixed(share) => share.unwrap_or(u64::MAX),
            BudgetSource::Ledger(_) => 0,
        };
        self.leftover = 0;
        let stop_reason;

        'search: loop {
            if stop.load(Ordering::Relaxed) {
                stop_reason = StopReason::GlobalStop;
                break;
            }
            if let Some(timeout) = policy.timeout {
                if start.elapsed() >= timeout {
                    stop.store(true, Ordering::Relaxed);
                    stop_reason = StopReason::Timeout;
                    break;
                }
            }
            if granted == 0 {
                match budget {
                    BudgetSource::Fixed(_) => {
                        stop_reason = StopReason::SearchSize;
                        break;
                    }
                    BudgetSource::Ledger(ledger) => {
                        granted = ledger.claim(config.batch_size.max(1) as u64);
                        if granted == 0 {
                            stop_reason = StopReason::SearchSize;
                            break;
                        }
                    }
                }
            }

            let max = (config.batch_size.max(1) as u64)
                .min(granted)
                .min(self.searcher.lookahead() as u64) as usize;
            buf.clear();
            {
                let _span = self.track.as_ref().and_then(|t| t.span("searcher.propose"));
                self.searcher
                    .propose(self.space, &mut self.rng, max.max(1), &mut buf);
            }
            if buf.is_empty() {
                stop_reason = StopReason::Exhausted;
                break;
            }

            let _eval_span = self
                .track
                .as_ref()
                .and_then(|t| t.span_n("cost.evaluate", buf.len() as u64));
            // Whole-batch evaluation (bit-identical to per-mapping calls)
            // amortizes the evaluator's batched fast path; reports still
            // flow back per mapping, in proposal order.
            let evals = evaluator.evaluate_batch(&buf);
            for (mapping, eval) in buf.iter().zip(evals) {
                self.evaluations += 1;
                granted = granted.saturating_sub(1);
                if let BudgetSource::Ledger(ledger) = budget {
                    ledger.consume();
                }
                if let Some(trace) = self.trace.as_mut() {
                    trace.record(eval.primary(), mapping, start.elapsed());
                }
                if let Some(convergence) = self.convergence.as_mut() {
                    convergence.record(eval.primary());
                }
                let improved = match self.best.as_ref() {
                    None => true,
                    Some((_, incumbent)) => eval.better_than(incumbent),
                };
                if improved {
                    self.best = Some((mapping.clone(), eval.clone()));
                    self.since_improvement = 0;
                } else {
                    self.since_improvement += 1;
                }
                self.searcher.report(mapping, eval.primary(), &mut self.rng);

                if config.sync_interval > 0 && self.evaluations.is_multiple_of(config.sync_interval)
                {
                    if let Some((m, e)) = self.best.as_ref() {
                        global.offer(m, e);
                    }
                    if self.live_sync {
                        // Live mode: apply the policy against a racy
                        // snapshot of the shared best (work stealing /
                        // unbounded budgets — not replay-deterministic).
                        let snapshot = global.snapshot();
                        self.sync_point(config, snapshot.as_ref());
                    }
                }

                if let Some(victory) = policy.victory_condition {
                    if self.since_improvement >= victory {
                        stop_reason = StopReason::Victory;
                        break 'search;
                    }
                }
            }
        }

        // Unused budget: pooled for stealing (fixed shares) or refunded to
        // the ledger for the other shards still claiming from it.
        match budget {
            BudgetSource::Fixed(Some(_)) if granted < u64::MAX => self.leftover = granted,
            BudgetSource::Ledger(ledger) => ledger.refund(granted),
            BudgetSource::Fixed(_) => {}
        }
        if let Some((m, e)) = self.best.as_ref() {
            global.offer(m, e);
        }
        self.stop_reason = stop_reason;
    }

    fn finish(self) -> ShardReport {
        ShardReport {
            shard: self.shard,
            evaluations: self.evaluations,
            best: self.best,
            stop: self.stop_reason,
            trace: self.trace,
            convergence: self.convergence,
        }
    }
}

/// Execute every queued shard run on `workers` threads (each worker pops
/// the next shard, drives it to a stop, and moves on). Returns the runs
/// (in completion order — sort by shard index for reporting) and the summed
/// leftover budget of shards that could not use their fixed share.
#[allow(clippy::too_many_arguments)]
fn execute_queue<'a>(
    config: &MapperConfig,
    runs: Vec<ShardRun<'a>>,
    ledger: Option<&BudgetLedger>,
    workers: usize,
    evaluator: &Arc<dyn CostEvaluator>,
    global: &GlobalBest,
    stop: &AtomicBool,
    start: Instant,
) -> (Vec<ShardRun<'a>>, u64) {
    let shards = runs.len();
    let queue: Mutex<VecDeque<ShardRun<'a>>> = Mutex::new(runs.into());
    let done: Mutex<Vec<ShardRun<'a>>> = Mutex::new(Vec::with_capacity(shards));
    let surplus = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..workers.min(shards).max(1) {
            let queue = &queue;
            let done = &done;
            let surplus = &surplus;
            let evaluator = Arc::clone(evaluator);
            handles.push(scope.spawn(move || loop {
                // Poisoned locks only mean a sibling worker panicked while
                // holding the queue; the data is a plain VecDeque/Vec and
                // stays valid, so recover instead of cascading the panic.
                let next = queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front();
                let Some(mut run) = next else {
                    break;
                };
                let budget = match ledger {
                    Some(ledger) => BudgetSource::Ledger(ledger),
                    None => BudgetSource::Fixed(run.grant),
                };
                run.drive(config, &evaluator, budget, global, stop, start);
                // Relaxed: `surplus` is an independent tally; the join below
                // is the synchronization point before it is read.
                surplus.fetch_add(run.leftover, Ordering::Relaxed);
                done.lock().unwrap_or_else(|e| e.into_inner()).push(run);
            }));
        }
        for handle in handles {
            // mm-lint: allow(panic): re-raising a worker panic on the
            // driving thread is the correct propagation, not a new failure.
            handle.join().expect("mapper worker panicked");
        }
    });

    (
        done.into_inner().unwrap_or_else(|e| e.into_inner()),
        surplus.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::ModelEvaluator;
    use mm_accel::{Architecture, CostModel};
    use mm_mapspace::ProblemSpec;
    use mm_search::{RandomSearch, SimulatedAnnealing};
    use std::time::Duration;

    fn setup() -> (MapSpace, Arc<dyn CostEvaluator>) {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(512, 7);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, problem);
        (space, Arc::new(ModelEvaluator::edp(model)))
    }

    #[test]
    fn search_size_is_split_and_respected() {
        let (space, evaluator) = setup();
        let mapper = Mapper::new(MapperConfig {
            threads: 3,
            termination: TerminationPolicy::search_size(90),
            ..MapperConfig::default()
        });
        let report = mapper.run(&space, evaluator, |_| Box::new(RandomSearch::new()));
        assert_eq!(report.total_evaluations, 90);
        for t in &report.shards {
            assert_eq!(t.evaluations, 30);
            assert_eq!(t.stop, StopReason::SearchSize);
        }
        assert!(report.best_mapping.is_some());
        assert!(space.is_member(report.best_mapping.as_ref().unwrap()));
        assert!(report.best_cost().is_finite());
        assert!(report.evals_per_sec > 0.0);
    }

    #[test]
    fn shards_decouple_from_threads() {
        let (space, evaluator) = setup();
        let mapper = Mapper::new(MapperConfig {
            threads: 2,
            shards: Some(5),
            termination: TerminationPolicy::search_size(52),
            ..MapperConfig::default()
        });
        let report = mapper.run(&space, evaluator, |_| Box::new(RandomSearch::new()));
        assert_eq!(report.shards.len(), 5);
        assert_eq!(report.total_evaluations, 52);
        let evals: Vec<u64> = report.shards.iter().map(|s| s.evaluations).collect();
        assert_eq!(evals, vec![11, 11, 10, 10, 10], "exact split");
    }

    #[test]
    fn deterministic_schedule_is_byte_identical_across_worker_counts() {
        let (space, evaluator) = setup();
        let run = |threads: usize, shard_space: bool| {
            Mapper::new(MapperConfig {
                threads,
                shards: Some(4),
                shard_space,
                seed: 7,
                termination: TerminationPolicy::search_size(240),
                ..MapperConfig::default()
            })
            .run(&space, Arc::clone(&evaluator), |_| {
                Box::new(SimulatedAnnealing::default())
            })
        };
        for shard_space in [false, true] {
            let canon1 = run(1, shard_space).canonical_string();
            let canon2 = run(2, shard_space).canonical_string();
            let canon4 = run(4, shard_space).canonical_string();
            assert_eq!(canon1, canon2, "shard_space={shard_space}");
            assert_eq!(canon1, canon4, "shard_space={shard_space}");
        }
    }

    #[test]
    fn sharded_space_results_stay_in_their_shards() {
        let (space, evaluator) = setup();
        let mapper = Mapper::new(MapperConfig {
            threads: 2,
            shards: Some(4),
            shard_space: true,
            termination: TerminationPolicy::search_size(200),
            ..MapperConfig::default()
        });
        let report = mapper.run(&space, Arc::clone(&evaluator), |_| {
            Box::new(RandomSearch::new())
        });
        assert_eq!(report.total_evaluations, 200);
        for (s, r) in report.shards.iter().enumerate() {
            let shard = space.shard(s, 4);
            let (m, _) = r.best.as_ref().expect("shard found something");
            assert!(
                MapSpaceView::is_member(&shard, m),
                "shard {s} best must belong to shard {s}"
            );
            for (other, _) in report.shards.iter().enumerate().filter(|&(o, _)| o != s) {
                assert!(
                    !MapSpaceView::is_member(&space.shard(other, 4), m),
                    "shard {s} best must not belong to shard {other}"
                );
            }
        }
    }

    #[test]
    fn work_stealing_spends_the_full_budget() {
        let (space, evaluator) = setup();
        let mapper = Mapper::new(MapperConfig {
            threads: 2,
            shards: Some(4),
            schedule: MapperSchedule::WorkStealing,
            termination: TerminationPolicy::search_size(301),
            ..MapperConfig::default()
        });
        let report = mapper.run(&space, evaluator, |_| Box::new(RandomSearch::new()));
        assert_eq!(report.total_evaluations, 301, "ledger spends exactly");
        assert!(report.best_mapping.is_some());
    }

    /// A proposal-limited searcher: exhausts after `limit` proposals. Under
    /// work stealing its unused budget must be stolen by other shards.
    struct LimitedRandom {
        inner: RandomSearch,
        limit: u64,
        proposed: u64,
    }

    impl ProposalSearch for LimitedRandom {
        fn name(&self) -> &str {
            "LimitedRandom"
        }
        fn begin(&mut self, space: &dyn MapSpaceView, horizon: Option<u64>, rng: &mut StdRng) {
            self.inner.begin(space, horizon, rng);
        }
        fn propose(
            &mut self,
            space: &dyn MapSpaceView,
            rng: &mut StdRng,
            max: usize,
            out: &mut ProposalBuf,
        ) {
            let room = self.limit.saturating_sub(self.proposed).min(max as u64) as usize;
            if room == 0 {
                return; // exhausted: propose nothing even when asked
            }
            self.inner.propose(space, rng, room, out);
            self.proposed += out.len() as u64;
        }
        fn report(&mut self, mapping: &Mapping, cost: f64, rng: &mut StdRng) {
            self.inner.report(mapping, cost, rng);
        }
    }

    #[test]
    fn idle_budget_is_stolen_by_unfinished_shards() {
        let (space, evaluator) = setup();
        const TOTAL: u64 = 200;
        const LIMIT: u64 = 20; // shard 0 exhausts at 20 of its 100 share
        let factory = |s: usize| -> Box<dyn ProposalSearch> {
            if s == 0 {
                Box::new(LimitedRandom {
                    inner: RandomSearch::new(),
                    limit: LIMIT,
                    proposed: 0,
                })
            } else {
                Box::new(RandomSearch::new())
            }
        };
        let run = |schedule: MapperSchedule| {
            Mapper::new(MapperConfig {
                threads: 2,
                shards: Some(2),
                schedule,
                seed: 11,
                termination: TerminationPolicy::search_size(TOTAL),
                ..MapperConfig::default()
            })
            .run(&space, Arc::clone(&evaluator), factory)
        };
        let fixed = run(MapperSchedule::Deterministic);
        assert_eq!(fixed.shards[0].evaluations, LIMIT);
        assert_eq!(fixed.shards[0].stop, StopReason::Exhausted);
        assert_eq!(fixed.total_evaluations, LIMIT + TOTAL / 2);

        let stealing = run(MapperSchedule::WorkStealing);
        assert_eq!(stealing.shards[0].evaluations, LIMIT);
        assert_eq!(
            stealing.total_evaluations, TOTAL,
            "shard 1 steals shard 0's unused budget"
        );
        assert!(stealing.shards[1].evaluations > fixed.shards[1].evaluations);
        // Shard 1 evaluates a strict superset of its deterministic stream,
        // so the stolen-budget best can never be worse.
        assert!(stealing.best_cost() <= fixed.best_cost());
    }

    #[test]
    fn barrier_synced_runs_spend_exact_budgets_and_stay_deterministic() {
        let (space, evaluator) = setup();
        let run = |threads: usize, sync: SyncPolicy| {
            Mapper::new(MapperConfig {
                threads,
                shards: Some(4),
                seed: 19,
                sync_interval: 16,
                sync,
                termination: TerminationPolicy::search_size(242),
                ..MapperConfig::default()
            })
            .run(&space, Arc::clone(&evaluator), |_| {
                Box::new(SimulatedAnnealing::default())
            })
        };
        let policies = [
            SyncPolicy::Anchor,
            SyncPolicy::Restart { patience: 1 },
            SyncPolicy::Annealed {
                start: 0.9,
                end: 0.1,
            },
        ];
        let off = run(1, SyncPolicy::Off);
        assert_eq!(off.total_evaluations, 242);
        for sync in policies {
            let one = run(1, sync);
            assert_eq!(one.total_evaluations, 242, "{sync}: exact budget");
            assert_eq!(
                one.canonical_string(),
                run(3, sync).canonical_string(),
                "{sync}: worker count leaked into the report"
            );
            assert_ne!(
                one.canonical_string(),
                off.canonical_string(),
                "{sync}: policy must actually steer the search"
            );
        }
    }

    #[test]
    fn sync_policy_is_part_of_the_canonical_identity() {
        let (space, evaluator) = setup();
        let run = |sync: SyncPolicy| {
            Mapper::new(MapperConfig {
                sync,
                termination: TerminationPolicy::search_size(10),
                ..MapperConfig::default()
            })
            .run(&space, Arc::clone(&evaluator), |_| {
                Box::new(RandomSearch::new())
            })
        };
        // Single shard: identical evaluations either way, but the rendered
        // identity must still differ so downstream fingerprints (serve
        // cache, bench baselines) never conflate the configurations.
        let off = run(SyncPolicy::Off);
        let anchored = run(SyncPolicy::Anchor);
        assert!(off.canonical_string().starts_with("sync=off\n"));
        assert!(anchored.canonical_string().starts_with("sync=anchor\n"));
    }

    #[test]
    fn axis_subsets_restrict_the_partition_and_clamp_capacity() {
        let (space, evaluator) = setup();
        // conv1d(512, 7) on the example accelerator: d = 2, so the
        // L2-order-only subset caps at 2 shards while the full product
        // supports far more.
        let order_only = vec![ShardAxisKind::OrderL2];
        let mapper = Mapper::new(MapperConfig {
            shards: Some(64),
            shard_space: true,
            shard_axes: Some(order_only.clone()),
            ..MapperConfig::default()
        });
        assert_eq!(mapper.effective_shards(&space), 2, "2! order prefixes");
        assert!(
            Mapper::new(MapperConfig {
                shards: Some(64),
                shard_space: true,
                ..MapperConfig::default()
            })
            .effective_shards(&space)
                > 2,
            "the full product supports more shards"
        );
        // The restricted run still covers each shard disjointly.
        let mapper = Mapper::new(MapperConfig {
            threads: 2,
            shards: Some(2),
            shard_space: true,
            shard_axes: Some(order_only.clone()),
            termination: TerminationPolicy::search_size(80),
            ..MapperConfig::default()
        });
        let report = mapper.run(&space, evaluator, |_| Box::new(RandomSearch::new()));
        assert_eq!(report.total_evaluations, 80);
        for (s, r) in report.shards.iter().enumerate() {
            let shard = space.shard_with(&order_only, s, 2);
            let (m, _) = r.best.as_ref().expect("shard found something");
            assert!(MapSpaceView::is_member(&shard, m));
        }
    }

    /// Records the horizon each shard's searcher was begun with.
    struct HorizonSpy {
        inner: RandomSearch,
        seen: Arc<Mutex<Vec<u64>>>,
    }

    impl ProposalSearch for HorizonSpy {
        fn name(&self) -> &str {
            "HorizonSpy"
        }
        fn begin(&mut self, space: &dyn MapSpaceView, horizon: Option<u64>, rng: &mut StdRng) {
            self.seen
                .lock()
                .unwrap()
                .push(horizon.expect("bounded run"));
            self.inner.begin(space, horizon, rng);
        }
        fn propose(
            &mut self,
            space: &dyn MapSpaceView,
            rng: &mut StdRng,
            max: usize,
            out: &mut ProposalBuf,
        ) {
            self.inner.propose(space, rng, max, out);
        }
        fn report(&mut self, mapping: &Mapping, cost: f64, rng: &mut StdRng) {
            self.inner.report(mapping, cost, rng);
        }
    }

    #[test]
    fn shard_horizon_hint_scales_begin_horizons_and_stays_deterministic() {
        let (space, evaluator) = setup();
        let run = |threads: usize, shard_horizon: bool| -> (MapperReport, Vec<u64>) {
            let seen = Arc::new(Mutex::new(Vec::new()));
            let report = Mapper::new(MapperConfig {
                threads,
                shards: Some(4),
                shard_space: true,
                shard_horizon,
                seed: 23,
                termination: TerminationPolicy::search_size(240),
                ..MapperConfig::default()
            })
            .run(&space, Arc::clone(&evaluator), |_| {
                Box::new(HorizonSpy {
                    inner: RandomSearch::new(),
                    seen: Arc::clone(&seen),
                })
            });
            let mut horizons = seen.lock().unwrap().clone();
            horizons.sort_unstable();
            (report, horizons)
        };
        let (raw_report, raw) = run(1, false);
        assert_eq!(raw, vec![60; 4], "un-hinted shards see their exact share");
        let (hinted_report, hinted) = run(1, true);
        assert_eq!(hinted_report.total_evaluations, 240, "hint costs no budget");
        for h in &hinted {
            assert!(
                (1..60).contains(h),
                "hinted horizon must shrink below the raw share, got {h}"
            );
        }
        // The hint is pure shard-local state: replay-deterministic across
        // worker counts, for the report and the horizons alike.
        let (hinted_report_3, hinted_3) = run(3, true);
        assert_eq!(hinted, hinted_3);
        assert_eq!(
            hinted_report.canonical_string(),
            hinted_report_3.canonical_string(),
            "horizon hints must stay worker-count independent"
        );
        assert_eq!(
            raw_report.canonical_string(),
            hinted_report.canonical_string(),
            "RandomSearch ignores the horizon, so the stream is unchanged"
        );
    }

    #[test]
    fn victory_condition_stops_stagnant_shards() {
        let (space, evaluator) = setup();
        let mapper = Mapper::new(MapperConfig {
            threads: 2,
            termination: TerminationPolicy::search_size(100_000).with_victory_condition(25),
            ..MapperConfig::default()
        });
        let report = mapper.run(&space, evaluator, |_| Box::new(RandomSearch::new()));
        assert!(report.total_evaluations < 100_000);
        for t in &report.shards {
            assert_eq!(t.stop, StopReason::Victory);
        }
    }

    #[test]
    fn timeout_stops_the_run() {
        let (space, evaluator) = setup();
        let mapper = Mapper::new(MapperConfig {
            threads: 2,
            termination: TerminationPolicy::default().with_timeout(Duration::from_millis(50)),
            ..MapperConfig::default()
        });
        let start = Instant::now();
        let report = mapper.run(&space, evaluator, |_| Box::new(RandomSearch::new()));
        assert!(start.elapsed() < Duration::from_secs(10));
        assert!(report.total_evaluations > 0);
        assert!(report
            .shards
            .iter()
            .all(|t| matches!(t.stop, StopReason::Timeout | StopReason::GlobalStop)));
    }

    #[test]
    #[should_panic(expected = "unbounded termination policy")]
    fn unbounded_policy_is_rejected() {
        let (space, evaluator) = setup();
        let mapper = Mapper::new(MapperConfig {
            termination: TerminationPolicy::default(),
            ..MapperConfig::default()
        });
        let _ = mapper.run(&space, evaluator, |_| Box::new(RandomSearch::new()));
    }

    #[test]
    fn traces_are_recorded_when_requested() {
        let (space, evaluator) = setup();
        let mapper = Mapper::new(MapperConfig {
            threads: 2,
            record_traces: true,
            termination: TerminationPolicy::search_size(40),
            ..MapperConfig::default()
        });
        let report = mapper.run(&space, evaluator, |_| {
            Box::new(SimulatedAnnealing::default())
        });
        for t in &report.shards {
            let trace = t.trace.as_ref().expect("trace recorded");
            assert_eq!(trace.len(), t.evaluations as usize);
            assert_eq!(trace.best_cost, t.best.as_ref().unwrap().1.primary());
            // The convergence recorder rides along and agrees with the
            // full trace collapsed to improvements.
            let convergence = t.convergence.as_ref().expect("convergence recorded");
            assert_eq!(convergence, &trace.convergence());
        }
        let merged = report.convergence.as_ref().expect("merged convergence");
        assert_eq!(merged.total_evals, report.total_evaluations);
        assert_eq!(merged.best_cost(), report.best_cost());
    }

    #[test]
    fn convergence_traces_are_worker_count_invariant() {
        let (space, evaluator) = setup();
        let run = |threads: usize| {
            Mapper::new(MapperConfig {
                threads,
                shards: Some(4),
                seed: 31,
                record_traces: true,
                sync: SyncPolicy::Anchor,
                sync_interval: 16,
                termination: TerminationPolicy::search_size(240),
                ..MapperConfig::default()
            })
            .run(&space, Arc::clone(&evaluator), |_| {
                Box::new(SimulatedAnnealing::default())
            })
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.convergence, four.convergence);
        assert!(!one.convergence.as_ref().unwrap().is_empty());
        // Best-so-far is monotone non-increasing along the merged curve.
        let points = &one.convergence.as_ref().unwrap().points;
        for w in points.windows(2) {
            assert!(w[1].best_cost < w[0].best_cost);
            assert!(w[1].evals > w[0].evals);
        }
    }

    #[test]
    fn convergence_is_absent_when_untracked() {
        let (space, evaluator) = setup();
        let report = Mapper::new(MapperConfig {
            termination: TerminationPolicy::search_size(20),
            ..MapperConfig::default()
        })
        .run(&space, evaluator, |_| Box::new(RandomSearch::new()));
        if !mm_telemetry::enabled() {
            assert!(report.convergence.is_none());
            assert!(report.shards.iter().all(|s| s.convergence.is_none()));
        }
    }

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let a: Vec<u64> = (0..8).map(|t| shard_seed(42, t)).collect();
        let b: Vec<u64> = (0..8).map(|t| shard_seed(42, t)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8, "distinct streams per shard");
        assert_ne!(shard_seed(1, 0), shard_seed(2, 0));
    }

    #[test]
    fn effective_shards_clamps_to_capacity() {
        let (space, _) = setup();
        let mapper = Mapper::new(MapperConfig {
            shards: Some(1_000_000_000),
            shard_space: true,
            ..MapperConfig::default()
        });
        let n = mapper.effective_shards(&space);
        assert!(n as u128 <= space.shard_capacity());
        let unclamped = Mapper::new(MapperConfig {
            shards: Some(64),
            shard_space: false,
            ..MapperConfig::default()
        });
        assert_eq!(unclamped.effective_shards(&space), 64);
    }
}
