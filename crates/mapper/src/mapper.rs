//! The [`Mapper`] driver: multi-threaded, sharded mapping space search.
//!
//! Follows the proven Timeloop-mapper architecture: the map space is divvied
//! across `threads` independent search threads (each running its own
//! [`ProposalSearch`] instance over a deterministically derived RNG stream),
//! every thread periodically publishes its best-so-far mapping to a shared
//! global best, and threads terminate via the configurable
//! [`TerminationPolicy`] (`search_size` / `victory_condition` / `timeout`).
//!
//! # Determinism
//!
//! Thread `t` of a run with seed `s` always sees the same RNG stream
//! (derived as `splitmix(s, t)`) and — under a pure `search_size` policy —
//! performs exactly the same evaluations, regardless of scheduling. The
//! final best is merged across threads in thread-index order with strictly-
//! better-wins comparison, so *same seed + same thread count ⇒ identical
//! best mapping*. Two things intentionally trade determinism away when
//! enabled: wall-clock `timeout`, and
//! [`MapperConfig::adopt_global_best`] (threads steering by each others'
//! progress).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mm_mapspace::{MapSpace, Mapping};
use mm_search::{ProposalSearch, SearchTrace};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::eval::CostEvaluator;
use crate::metrics::Evaluation;
use crate::policy::{StopReason, TerminationPolicy};

/// Configuration of a [`Mapper`] run.
#[derive(Debug, Clone)]
pub struct MapperConfig {
    /// Number of search threads.
    pub threads: usize,
    /// Master seed; per-thread streams are derived deterministically.
    pub seed: u64,
    /// Evaluations between a thread publishing its best to the shared
    /// global best.
    pub sync_interval: u64,
    /// Maximum proposals a thread requests per driver iteration (bounded
    /// further by the searcher's own lookahead).
    pub batch_size: usize,
    /// When to stop.
    pub termination: TerminationPolicy,
    /// Let searchers observe the shared global best at sync points
    /// (faster convergence, but multi-thread runs become non-deterministic).
    pub adopt_global_best: bool,
    /// Record a full per-thread [`SearchTrace`] (costs mapping clones per
    /// evaluation; leave off for throughput measurements).
    pub record_traces: bool,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            threads: 1,
            seed: 0,
            sync_interval: 64,
            batch_size: 16,
            termination: TerminationPolicy::search_size(10_000),
            adopt_global_best: false,
            record_traces: false,
        }
    }
}

/// What one search thread did.
#[derive(Debug, Clone)]
pub struct ThreadReport {
    /// Thread index.
    pub thread: usize,
    /// Evaluations performed.
    pub evaluations: u64,
    /// Best mapping found by this thread and its metrics.
    pub best: Option<(Mapping, Evaluation)>,
    /// Why the thread stopped.
    pub stop: StopReason,
    /// Full trace, when [`MapperConfig::record_traces`] is set.
    pub trace: Option<SearchTrace>,
}

/// The result of a [`Mapper`] run.
#[derive(Debug, Clone)]
pub struct MapperReport {
    /// Globally best mapping (merged across threads in thread order).
    pub best_mapping: Option<Mapping>,
    /// Metrics of the best mapping, in the evaluator's priority order.
    pub best_metrics: Option<Evaluation>,
    /// Total evaluations across all threads.
    pub total_evaluations: u64,
    /// Wall-clock duration of the run in seconds.
    pub wall_time_s: f64,
    /// Aggregate evaluation throughput.
    pub evals_per_sec: f64,
    /// Per-thread details, indexed by thread.
    pub threads: Vec<ThreadReport>,
}

impl MapperReport {
    /// The best primary-metric value, or ∞ when nothing was evaluated.
    pub fn best_cost(&self) -> f64 {
        self.best_metrics
            .as_ref()
            .map_or(f64::INFINITY, Evaluation::primary)
    }
}

/// Shared best-so-far mapping, updated at sync intervals.
#[derive(Default)]
struct GlobalBest {
    slot: Mutex<Option<(Mapping, Evaluation)>>,
}

impl GlobalBest {
    fn offer(&self, mapping: &Mapping, eval: &Evaluation) {
        let mut slot = self.slot.lock().expect("global best lock");
        let better = match slot.as_ref() {
            None => true,
            Some((_, incumbent)) => eval.better_than(incumbent),
        };
        if better {
            *slot = Some((mapping.clone(), eval.clone()));
        }
    }

    fn snapshot(&self) -> Option<(Mapping, Evaluation)> {
        self.slot.lock().expect("global best lock").clone()
    }
}

/// Deterministic RNG-stream seed derivation (SplitMix64 over seed ⊕ index):
/// stream `i` of master seed `s` is always the same, and distinct indices
/// give decorrelated streams. Used for the mapper's per-thread streams and
/// exported for any orchestrator needing the same guarantee (e.g.
/// `mm-serve`'s per-job streams).
pub fn derive_stream_seed(master: u64, index: usize) -> u64 {
    thread_seed(master, index)
}

/// Deterministic per-thread seed derivation (SplitMix64 over seed ⊕ index).
fn thread_seed(master: u64, thread: usize) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(thread as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The multi-threaded mapper orchestration engine.
#[derive(Debug, Clone, Default)]
pub struct Mapper {
    config: MapperConfig,
}

impl Mapper {
    /// Create a mapper with the given configuration.
    pub fn new(config: MapperConfig) -> Self {
        Mapper { config }
    }

    /// The configuration.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// Run the search: `factory(t)` builds the searcher for thread `t`
    /// (typically identical searchers, diverging only through their derived
    /// RNG streams), `evaluator` scores proposals.
    ///
    /// # Panics
    ///
    /// Panics if the termination policy is unbounded (no `search_size`,
    /// `victory_condition`, or `timeout`) — such a run would never end.
    pub fn run(
        &self,
        space: &MapSpace,
        evaluator: Arc<dyn CostEvaluator>,
        mut factory: impl FnMut(usize) -> Box<dyn ProposalSearch>,
    ) -> MapperReport {
        assert!(
            self.config.termination.is_bounded(),
            "unbounded termination policy: set search_size, victory_condition, or timeout"
        );
        let threads = self.config.threads.max(1);
        let searchers: Vec<Box<dyn ProposalSearch>> = (0..threads).map(&mut factory).collect();

        let global = GlobalBest::default();
        let stop = AtomicBool::new(false);
        let start = Instant::now();

        let mut reports: Vec<ThreadReport> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for (t, searcher) in searchers.into_iter().enumerate() {
                let global = &global;
                let stop = &stop;
                let evaluator = Arc::clone(&evaluator);
                let config = &self.config;
                handles.push(scope.spawn(move || {
                    run_thread(
                        t, threads, config, space, evaluator, searcher, global, stop, start,
                    )
                }));
            }
            for handle in handles {
                reports.push(handle.join().expect("mapper thread panicked"));
            }
        });
        // Joined in spawn order, so reports are already thread-ordered.

        let wall_time_s = start.elapsed().as_secs_f64();
        let total_evaluations: u64 = reports.iter().map(|r| r.evaluations).sum();
        // Deterministic merge: thread order, strictly-better-wins.
        let mut best: Option<(Mapping, Evaluation)> = None;
        for report in &reports {
            if let Some((mapping, eval)) = &report.best {
                let take = match best.as_ref() {
                    None => true,
                    Some((_, incumbent)) => eval.better_than(incumbent),
                };
                if take {
                    best = Some((mapping.clone(), eval.clone()));
                }
            }
        }
        let (best_mapping, best_metrics) = match best {
            Some((m, e)) => (Some(m), Some(e)),
            None => (None, None),
        };
        MapperReport {
            best_mapping,
            best_metrics,
            total_evaluations,
            wall_time_s,
            evals_per_sec: if wall_time_s > 0.0 {
                total_evaluations as f64 / wall_time_s
            } else {
                0.0
            },
            threads: reports,
        }
    }
}

/// One search thread's loop: propose → evaluate inline → report, with
/// periodic global-best sync and termination checks.
#[allow(clippy::too_many_arguments)]
fn run_thread(
    thread: usize,
    threads: usize,
    config: &MapperConfig,
    space: &MapSpace,
    evaluator: Arc<dyn CostEvaluator>,
    mut searcher: Box<dyn ProposalSearch>,
    global: &GlobalBest,
    stop: &AtomicBool,
    start: Instant,
) -> ThreadReport {
    let policy = &config.termination;
    let share = policy.per_thread_search_size(thread, threads);
    let mut rng = StdRng::seed_from_u64(thread_seed(config.seed, thread));
    searcher.begin(space, share, &mut rng);

    let mut trace = config
        .record_traces
        .then(|| SearchTrace::new(searcher.name()));
    let mut best: Option<(Mapping, Evaluation)> = None;
    let mut evaluations = 0u64;
    let mut since_improvement = 0u64;
    let mut buf: Vec<Mapping> = Vec::new();
    let stop_reason;

    'search: loop {
        if stop.load(Ordering::Relaxed) {
            stop_reason = StopReason::GlobalStop;
            break;
        }
        if let Some(timeout) = policy.timeout {
            if start.elapsed() >= timeout {
                stop.store(true, Ordering::Relaxed);
                stop_reason = StopReason::Timeout;
                break;
            }
        }
        if let Some(share) = share {
            if evaluations >= share {
                stop_reason = StopReason::SearchSize;
                break;
            }
        }

        let remaining = share.map_or(u64::MAX, |s| s - evaluations);
        let max = (config.batch_size.max(1) as u64)
            .min(remaining)
            .min(searcher.lookahead() as u64) as usize;
        buf.clear();
        searcher.propose(space, &mut rng, max.max(1), &mut buf);
        if buf.is_empty() {
            stop_reason = StopReason::Exhausted;
            break;
        }

        for mapping in &buf {
            let eval = evaluator.evaluate(mapping);
            evaluations += 1;
            if let Some(trace) = trace.as_mut() {
                trace.record(eval.primary(), mapping, start.elapsed());
            }
            let improved = match best.as_ref() {
                None => true,
                Some((_, incumbent)) => eval.better_than(incumbent),
            };
            if improved {
                best = Some((mapping.clone(), eval.clone()));
                since_improvement = 0;
            } else {
                since_improvement += 1;
            }
            searcher.report(mapping, eval.primary(), &mut rng);

            if config.sync_interval > 0 && evaluations.is_multiple_of(config.sync_interval) {
                if let Some((m, e)) = best.as_ref() {
                    global.offer(m, e);
                }
                if config.adopt_global_best {
                    if let Some((m, e)) = global.snapshot() {
                        searcher.observe_global_best(&m, e.primary());
                    }
                }
            }

            if let Some(victory) = policy.victory_condition {
                if since_improvement >= victory {
                    stop_reason = StopReason::Victory;
                    break 'search;
                }
            }
            if let Some(share) = share {
                if evaluations >= share {
                    stop_reason = StopReason::SearchSize;
                    break 'search;
                }
            }
        }
    }

    if let Some((m, e)) = best.as_ref() {
        global.offer(m, e);
    }
    ThreadReport {
        thread,
        evaluations,
        best,
        stop: stop_reason,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::ModelEvaluator;
    use mm_accel::{Architecture, CostModel};
    use mm_mapspace::ProblemSpec;
    use mm_search::{RandomSearch, SimulatedAnnealing};
    use std::time::Duration;

    fn setup() -> (MapSpace, Arc<dyn CostEvaluator>) {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(512, 7);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, problem);
        (space, Arc::new(ModelEvaluator::edp(model)))
    }

    #[test]
    fn search_size_is_split_and_respected() {
        let (space, evaluator) = setup();
        let mapper = Mapper::new(MapperConfig {
            threads: 3,
            termination: TerminationPolicy::search_size(90),
            ..MapperConfig::default()
        });
        let report = mapper.run(&space, evaluator, |_| Box::new(RandomSearch::new()));
        assert_eq!(report.total_evaluations, 90);
        for t in &report.threads {
            assert_eq!(t.evaluations, 30);
            assert_eq!(t.stop, StopReason::SearchSize);
        }
        assert!(report.best_mapping.is_some());
        assert!(space.is_member(report.best_mapping.as_ref().unwrap()));
        assert!(report.best_cost().is_finite());
        assert!(report.evals_per_sec > 0.0);
    }

    #[test]
    fn victory_condition_stops_stagnant_threads() {
        let (space, evaluator) = setup();
        let mapper = Mapper::new(MapperConfig {
            threads: 2,
            termination: TerminationPolicy::search_size(100_000).with_victory_condition(25),
            ..MapperConfig::default()
        });
        let report = mapper.run(&space, evaluator, |_| Box::new(RandomSearch::new()));
        assert!(report.total_evaluations < 100_000);
        for t in &report.threads {
            assert_eq!(t.stop, StopReason::Victory);
        }
    }

    #[test]
    fn timeout_stops_the_run() {
        let (space, evaluator) = setup();
        let mapper = Mapper::new(MapperConfig {
            threads: 2,
            termination: TerminationPolicy::default().with_timeout(Duration::from_millis(50)),
            ..MapperConfig::default()
        });
        let start = Instant::now();
        let report = mapper.run(&space, evaluator, |_| Box::new(RandomSearch::new()));
        assert!(start.elapsed() < Duration::from_secs(10));
        assert!(report.total_evaluations > 0);
        assert!(report
            .threads
            .iter()
            .all(|t| matches!(t.stop, StopReason::Timeout | StopReason::GlobalStop)));
    }

    #[test]
    #[should_panic(expected = "unbounded termination policy")]
    fn unbounded_policy_is_rejected() {
        let (space, evaluator) = setup();
        let mapper = Mapper::new(MapperConfig {
            termination: TerminationPolicy::default(),
            ..MapperConfig::default()
        });
        let _ = mapper.run(&space, evaluator, |_| Box::new(RandomSearch::new()));
    }

    #[test]
    fn traces_are_recorded_when_requested() {
        let (space, evaluator) = setup();
        let mapper = Mapper::new(MapperConfig {
            threads: 2,
            record_traces: true,
            termination: TerminationPolicy::search_size(40),
            ..MapperConfig::default()
        });
        let report = mapper.run(&space, evaluator, |_| {
            Box::new(SimulatedAnnealing::default())
        });
        for t in &report.threads {
            let trace = t.trace.as_ref().expect("trace recorded");
            assert_eq!(trace.len(), t.evaluations as usize);
            assert_eq!(trace.best_cost, t.best.as_ref().unwrap().1.primary());
        }
    }

    #[test]
    fn thread_seeds_are_distinct_and_stable() {
        let a: Vec<u64> = (0..8).map(|t| thread_seed(42, t)).collect();
        let b: Vec<u64> = (0..8).map(|t| thread_seed(42, t)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8, "distinct streams per thread");
        assert_ne!(thread_seed(1, 0), thread_seed(2, 0));
    }
}
