//! Termination policies for mapper threads, Timeloop-mapper style.
//!
//! Timeloop's mapper terminates each search thread on three knobs:
//! `search-size` (how many mappings to evaluate), `victory-condition`
//! (consecutive evaluations without improvement), and `timeout`. This module
//! provides the same vocabulary; any subset may be active, and a thread
//! stops on whichever fires first.

use std::time::Duration;

use serde::{Deserialize, Serialize};

pub use mm_search::split_evenly;

/// Why a mapper shard stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// Its share of the evaluation budget was spent.
    SearchSize,
    /// `victory_condition` consecutive evaluations failed to improve its
    /// best.
    Victory,
    /// The wall-clock `timeout` expired.
    Timeout,
    /// The searcher stopped proposing (its space or schedule is exhausted).
    Exhausted,
    /// Another thread triggered a global stop.
    GlobalStop,
}

/// Per-run termination policy.
///
/// `search_size` is the *total* evaluation budget, divided evenly across
/// threads (Timeloop semantics). `victory_condition` counts consecutive
/// non-improving evaluations against each thread's own best — a
/// thread-local criterion, so it preserves run determinism.
/// `timeout` is wall-clock and therefore *not* deterministic; leave it
/// unset when reproducibility matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TerminationPolicy {
    /// Total evaluations across all threads.
    pub search_size: Option<u64>,
    /// Consecutive non-improving evaluations before a thread declares
    /// victory.
    pub victory_condition: Option<u64>,
    /// Wall-clock limit for the whole run.
    pub timeout: Option<Duration>,
}

impl TerminationPolicy {
    /// Terminate after `total` evaluations across all threads.
    pub fn search_size(total: u64) -> Self {
        TerminationPolicy {
            search_size: Some(total),
            ..Default::default()
        }
    }

    /// Add a victory condition (consecutive non-improving evaluations).
    pub fn with_victory_condition(mut self, evals: u64) -> Self {
        self.victory_condition = Some(evals);
        self
    }

    /// Add a wall-clock timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Whether any stopping criterion is configured.
    pub fn is_bounded(&self) -> bool {
        self.search_size.is_some() || self.victory_condition.is_some() || self.timeout.is_some()
    }

    /// Shard `shard`'s share of the total `search_size`: an exact
    /// remainder-distributing split via [`split_evenly`].
    pub fn per_shard_search_size(&self, shard: usize, shards: usize) -> Option<u64> {
        Some(split_evenly(self.search_size?, shard, shards))
    }

    /// Alias of [`per_shard_search_size`](Self::per_shard_search_size) kept
    /// for callers from before shards were decoupled from threads.
    pub fn per_thread_search_size(&self, thread: usize, threads: usize) -> Option<u64> {
        self.per_shard_search_size(thread, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_size_splits_evenly_with_remainder_first() {
        let p = TerminationPolicy::search_size(10);
        let shares: Vec<u64> = (0..4)
            .map(|t| p.per_shard_search_size(t, 4).unwrap())
            .collect();
        assert_eq!(shares, vec![3, 3, 2, 2]);
        assert_eq!(shares.iter().sum::<u64>(), 10);
        assert_eq!(p.per_shard_search_size(0, 1), Some(10));
        assert_eq!(p.per_thread_search_size(1, 4), Some(3), "alias agrees");
    }

    /// The split is *exact* for any (total, count): shares sum to the total
    /// and differ by at most one — no shard silently gets a different
    /// budget.
    #[test]
    fn split_evenly_is_exact_for_any_shape() {
        for total in [0u64, 1, 7, 90, 1000, 10_001] {
            for count in 1usize..=13 {
                let shares: Vec<u64> = (0..count).map(|i| split_evenly(total, i, count)).collect();
                assert_eq!(
                    shares.iter().sum::<u64>(),
                    total,
                    "sum mismatch for {total}/{count}"
                );
                let max = *shares.iter().max().unwrap();
                let min = *shares.iter().min().unwrap();
                assert!(
                    max - min <= 1,
                    "uneven split for {total}/{count}: {shares:?}"
                );
            }
        }
        assert_eq!(split_evenly(5, 0, 0), 5, "zero count clamps to one shard");
    }

    #[test]
    fn builder_composes_criteria() {
        let p = TerminationPolicy::search_size(100)
            .with_victory_condition(32)
            .with_timeout(Duration::from_millis(50));
        assert!(p.is_bounded());
        assert_eq!(p.search_size, Some(100));
        assert_eq!(p.victory_condition, Some(32));
        assert_eq!(p.timeout, Some(Duration::from_millis(50)));
        assert!(!TerminationPolicy::default().is_bounded());
    }
}
