//! Termination policies for mapper threads, Timeloop-mapper style.
//!
//! Timeloop's mapper terminates each search thread on three knobs:
//! `search-size` (how many mappings to evaluate), `victory-condition`
//! (consecutive evaluations without improvement), and `timeout`. This module
//! provides the same vocabulary; any subset may be active, and a thread
//! stops on whichever fires first.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Why a mapper thread stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// Its share of the evaluation budget was spent.
    SearchSize,
    /// `victory_condition` consecutive evaluations failed to improve its
    /// best.
    Victory,
    /// The wall-clock `timeout` expired.
    Timeout,
    /// The searcher stopped proposing (its space or schedule is exhausted).
    Exhausted,
    /// Another thread triggered a global stop.
    GlobalStop,
}

/// Per-run termination policy.
///
/// `search_size` is the *total* evaluation budget, divided evenly across
/// threads (Timeloop semantics). `victory_condition` counts consecutive
/// non-improving evaluations against each thread's own best — a
/// thread-local criterion, so it preserves run determinism.
/// `timeout` is wall-clock and therefore *not* deterministic; leave it
/// unset when reproducibility matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TerminationPolicy {
    /// Total evaluations across all threads.
    pub search_size: Option<u64>,
    /// Consecutive non-improving evaluations before a thread declares
    /// victory.
    pub victory_condition: Option<u64>,
    /// Wall-clock limit for the whole run.
    pub timeout: Option<Duration>,
}

impl TerminationPolicy {
    /// Terminate after `total` evaluations across all threads.
    pub fn search_size(total: u64) -> Self {
        TerminationPolicy {
            search_size: Some(total),
            ..Default::default()
        }
    }

    /// Add a victory condition (consecutive non-improving evaluations).
    pub fn with_victory_condition(mut self, evals: u64) -> Self {
        self.victory_condition = Some(evals);
        self
    }

    /// Add a wall-clock timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Whether any stopping criterion is configured.
    pub fn is_bounded(&self) -> bool {
        self.search_size.is_some() || self.victory_condition.is_some() || self.timeout.is_some()
    }

    /// This thread's share of the total `search_size` (even split, with the
    /// remainder going to the lowest-indexed threads).
    pub fn per_thread_search_size(&self, thread: usize, threads: usize) -> Option<u64> {
        let total = self.search_size?;
        let threads = threads.max(1) as u64;
        let base = total / threads;
        let extra = u64::from((thread as u64) < total % threads);
        Some(base + extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_size_splits_evenly_with_remainder_first() {
        let p = TerminationPolicy::search_size(10);
        let shares: Vec<u64> = (0..4)
            .map(|t| p.per_thread_search_size(t, 4).unwrap())
            .collect();
        assert_eq!(shares, vec![3, 3, 2, 2]);
        assert_eq!(shares.iter().sum::<u64>(), 10);
        assert_eq!(p.per_thread_search_size(0, 1), Some(10));
    }

    #[test]
    fn builder_composes_criteria() {
        let p = TerminationPolicy::search_size(100)
            .with_victory_condition(32)
            .with_timeout(Duration::from_millis(50));
        assert!(p.is_bounded());
        assert_eq!(p.search_size, Some(100));
        assert_eq!(p.victory_condition, Some(32));
        assert_eq!(p.timeout, Some(Duration::from_millis(50)));
        assert!(!TerminationPolicy::default().is_bounded());
    }
}
