//! Property-based gradient checks: for randomly shaped MLPs and random
//! inputs, analytic input gradients must agree with central finite
//! differences, and training must never produce NaNs.

use mm_nn::optim::Sgd;
use mm_nn::{Dataset, Loss, Matrix, Mlp, Normalizer, TrainConfig, Trainer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(32))]

    /// Input gradients of a random MLP match central finite differences for
    /// a random linear functional of the outputs.
    #[test]
    fn input_gradient_matches_central_difference(
        seed in 0u64..u64::MAX,
        input_dim in 2usize..8,
        hidden in 4usize..24,
        output_dim in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Use tanh hidden units: the check compares against finite
        // differences, which are only reliable for smooth activations (ReLU
        // kinks are exercised by the unit tests in `mm_nn::layer`).
        let net = Mlp::with_activations(
            &[input_dim, hidden, output_dim],
            mm_nn::Activation::Tanh,
            mm_nn::Activation::Identity,
            &mut rng,
        );
        use rand::Rng;
        let x: Vec<f32> = (0..input_dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let w: Vec<f32> = (0..output_dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let grad = net.input_gradient(&x, &w);
        prop_assert_eq!(grad.len(), input_dim);

        let objective = |xx: &[f32]| -> f64 {
            net.predict(xx).iter().zip(&w).map(|(o, wi)| (o * wi) as f64).sum()
        };
        let eps = 1e-2f32;
        for i in 0..input_dim {
            let mut hi = x.clone();
            let mut lo = x.clone();
            hi[i] += eps;
            lo[i] -= eps;
            let fd = (objective(&hi) - objective(&lo)) / (2.0 * eps as f64);
            prop_assert!(
                (fd - grad[i] as f64).abs() < 0.05 * (1.0 + grad[i].abs() as f64),
                "feature {}: fd {} vs analytic {}", i, fd, grad[i]
            );
        }
    }

    /// A few SGD steps on random regression data keep every parameter finite.
    #[test]
    fn training_never_produces_nans(
        seed in 0u64..u64::MAX,
        n in 8usize..64,
        lr in 0.001f32..0.2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let xs: Vec<Vec<f32>> = (0..n).map(|_| vec![rng.gen_range(-2.0f32..2.0), rng.gen_range(-2.0f32..2.0)]).collect();
        let ys: Vec<Vec<f32>> = xs.iter().map(|x| vec![x[0] * 0.5 - x[1]]).collect();
        let ds = Dataset::new(xs, ys).unwrap();
        let mut model = Mlp::new(&[2, 8, 1], &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 5,
            batch_size: 8,
            test_fraction: 0.2,
            lr_schedule: None,
        });
        let hist = trainer.fit(&mut model, &ds, &mut Sgd::new(lr, 0.9), Loss::default_huber(), &mut rng);
        prop_assert!(hist.final_train_loss().is_finite());
        for layer in model.layers() {
            prop_assert!(layer.weight.as_slice().iter().all(|v| v.is_finite()));
            prop_assert!(layer.bias.iter().all(|v| v.is_finite()));
        }
    }

    /// Normalizer round-trips arbitrary data within floating-point tolerance.
    #[test]
    fn normalizer_roundtrip_property(
        rows in prop::collection::vec(prop::collection::vec(-1e3f32..1e3, 3), 2..40)
    ) {
        let norm = Normalizer::fit(&rows);
        for r in &rows {
            let back = norm.inverse(&norm.transform(r));
            for (a, b) in back.iter().zip(r) {
                prop_assert!((a - b).abs() < 1e-2 * (1.0 + b.abs()));
            }
        }
    }

    /// Loss gradients always point "uphill": stepping predictions against the
    /// gradient reduces the loss (for a small enough step).
    #[test]
    fn loss_gradient_descends(
        p in prop::collection::vec(-10.0f32..10.0, 4),
        t in prop::collection::vec(-10.0f32..10.0, 4),
    ) {
        for loss in [Loss::Mse, Loss::Mae, Loss::default_huber()] {
            let pm = Matrix::from_vec(1, 4, p.clone());
            let tm = Matrix::from_vec(1, 4, t.clone());
            let g = loss.gradient(&pm, &tm);
            let before = loss.value(&pm, &tm);
            let mut stepped = pm.clone();
            for (s, gv) in stepped.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *s -= 0.01 * gv;
            }
            let after = loss.value(&stepped, &tm);
            prop_assert!(after <= before + 1e-6, "{loss}: {before} -> {after}");
        }
    }
}
