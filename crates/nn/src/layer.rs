//! Dense layers and activations with manual backpropagation.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// Element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity (no non-linearity); used at the output layer.
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent (used by the RL actor to bound actions).
    Tanh,
}

impl Activation {
    /// Apply the activation element-wise.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        match self {
            Activation::Identity => {}
            Activation::Relu => {
                for v in out.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            Activation::Tanh => {
                for v in out.as_mut_slice() {
                    *v = v.tanh();
                }
            }
        }
        out
    }

    /// Back-propagate through the activation: element-wise product of the
    /// upstream gradient with the activation derivative evaluated at the
    /// *pre-activation* input `x`.
    pub fn backward(&self, x: &Matrix, grad_out: &Matrix) -> Matrix {
        let mut grad = grad_out.clone();
        match self {
            Activation::Identity => {}
            Activation::Relu => {
                for (g, &xv) in grad.as_mut_slice().iter_mut().zip(x.as_slice()) {
                    if xv <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Activation::Tanh => {
                for (g, &xv) in grad.as_mut_slice().iter_mut().zip(x.as_slice()) {
                    let t = xv.tanh();
                    *g *= 1.0 - t * t;
                }
            }
        }
        grad
    }
}

/// A fully connected layer `y = x Wᵀ + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix of shape `[out_features, in_features]`.
    pub weight: Matrix,
    /// Bias vector of length `out_features`.
    pub bias: Vec<f32>,
}

/// Gradients of a [`Linear`] layer's parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearGrad {
    /// Gradient w.r.t. the weight matrix (same shape as the weights).
    pub weight: Matrix,
    /// Gradient w.r.t. the bias.
    pub bias: Vec<f32>,
}

impl Linear {
    /// He-uniform initialization, appropriate for ReLU networks.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        let bound = (6.0 / in_features as f32).sqrt();
        let mut weight = Matrix::zeros(out_features, in_features);
        for v in weight.as_mut_slice() {
            *v = rng.gen_range(-bound..bound);
        }
        Linear {
            weight,
            bias: vec![0.0; out_features],
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.cols()
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.rows()
    }

    /// Number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.weight.rows() * self.weight.cols() + self.bias.len()
    }

    /// Forward pass for a batch `x` of shape `[batch, in_features]`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul_transpose_b(&self.weight);
        for r in 0..y.rows() {
            for (v, b) in y.row_mut(r).iter_mut().zip(&self.bias) {
                *v += b;
            }
        }
        y
    }

    /// Backward pass: given the batch input `x` and upstream gradient
    /// `grad_out` (shape `[batch, out_features]`), returns the gradient
    /// w.r.t. the input (shape `[batch, in_features]`) and the parameter
    /// gradients.
    pub fn backward(&self, x: &Matrix, grad_out: &Matrix) -> (Matrix, LinearGrad) {
        // dX = dY · W
        let grad_input = grad_out.matmul(&self.weight);
        // dW = dYᵀ · X
        let grad_weight = grad_out.transpose_a_matmul(x);
        let grad_bias = grad_out.column_sums();
        (
            grad_input,
            LinearGrad {
                weight: grad_weight,
                bias: grad_bias,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_matches_hand_computation() {
        let layer = Linear {
            weight: Matrix::from_vec(2, 3, vec![1., 0., -1., 2., 1., 0.]),
            bias: vec![0.5, -0.5],
        };
        let x = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let y = layer.forward(&x);
        // y0 = 1 - 3 + 0.5 = -1.5 ; y1 = 2 + 2 - 0.5 = 3.5
        assert_eq!(y.as_slice(), &[-1.5, 3.5]);
    }

    #[test]
    fn relu_and_tanh_forward_backward() {
        let x = Matrix::from_vec(1, 3, vec![-1., 0., 2.]);
        let relu = Activation::Relu.forward(&x);
        assert_eq!(relu.as_slice(), &[0., 0., 2.]);
        let g = Activation::Relu.backward(&x, &Matrix::from_vec(1, 3, vec![1., 1., 1.]));
        assert_eq!(g.as_slice(), &[0., 0., 1.]);

        let t = Activation::Tanh.forward(&x);
        assert!((t.as_slice()[2] - 2.0f32.tanh()).abs() < 1e-6);
        let g = Activation::Tanh.backward(&x, &Matrix::from_vec(1, 3, vec![1., 1., 1.]));
        assert!((g.as_slice()[1] - 1.0).abs() < 1e-6); // derivative at 0 is 1
    }

    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(4, 3, &mut rng);
        let x = Matrix::from_vec(2, 4, (0..8).map(|i| i as f32 * 0.1 - 0.3).collect());
        // Scalar objective: sum of outputs.
        let ones = Matrix::from_vec(2, 3, vec![1.0; 6]);
        let (grad_in, grads) = layer.backward(&x, &ones);

        let eps = 1e-3f32;
        let obj = |l: &Linear, xx: &Matrix| -> f32 { l.forward(xx).as_slice().iter().sum() };

        // Check one weight.
        let mut perturbed = layer.clone();
        let base = obj(&layer, &x);
        let w00 = perturbed.weight.get(0, 0);
        perturbed.weight.set(0, 0, w00 + eps);
        let fd = (obj(&perturbed, &x) - base) / eps;
        assert!(
            (fd - grads.weight.get(0, 0)).abs() < 1e-2,
            "fd {fd} vs analytic {}",
            grads.weight.get(0, 0)
        );

        // Check one bias.
        let mut perturbed = layer.clone();
        perturbed.bias[1] += eps;
        let fd = (obj(&perturbed, &x) - base) / eps;
        assert!((fd - grads.bias[1]).abs() < 1e-2);

        // Check one input.
        let mut xp = x.clone();
        xp.set(0, 2, x.get(0, 2) + eps);
        let fd = (obj(&layer, &xp) - base) / eps;
        assert!((fd - grad_in.get(0, 2)).abs() < 1e-2);
    }

    #[test]
    fn parameter_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Linear::new(10, 5, &mut rng);
        assert_eq!(layer.num_parameters(), 55);
        assert_eq!(layer.in_features(), 10);
        assert_eq!(layer.out_features(), 5);
    }
}
