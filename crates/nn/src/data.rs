//! Datasets and z-score normalization.
//!
//! Section 4.1.2/4.1.3 normalizes every input value and every output value to
//! zero mean and unit standard deviation over the training set ("input
//! whitening"); [`Normalizer`] implements exactly that, and [`Dataset`]
//! bundles normalized examples with shuffled mini-batch iteration and
//! train/test splitting.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::NnError;

/// Per-feature z-score normalizer: `x' = (x - mean) / std`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Normalizer {
    /// Fit a normalizer to a set of feature vectors.
    ///
    /// Features with (near-)zero variance get a standard deviation of 1 so
    /// that normalization is always well defined.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or rows have inconsistent lengths.
    pub fn fit(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a normalizer to no data");
        let dim = rows[0].len();
        let n = rows.len() as f64;
        let mut mean = vec![0.0f64; dim];
        for row in rows {
            assert_eq!(row.len(), dim, "inconsistent feature dimensions");
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v as f64;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f64; dim];
        for row in rows {
            for ((s, &v), m) in var.iter_mut().zip(row).zip(&mean) {
                let d = v as f64 - m;
                *s += d * d;
            }
        }
        let std: Vec<f32> = var
            .iter()
            .map(|&s| {
                let sd = (s / n).sqrt();
                if sd < 1e-8 {
                    1.0
                } else {
                    sd as f32
                }
            })
            .collect();
        Normalizer {
            mean: mean.iter().map(|&m| m as f32).collect(),
            std,
        }
    }

    /// Identity normalizer for `dim` features (mean 0, std 1).
    pub fn identity(dim: usize) -> Self {
        Normalizer {
            mean: vec![0.0; dim],
            std: vec![1.0; dim],
        }
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Normalize one vector.
    pub fn transform(&self, x: &[f32]) -> Vec<f32> {
        x.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((&v, &m), &s)| (v - m) / s)
            .collect()
    }

    /// Invert the normalization of one vector.
    pub fn inverse(&self, x: &[f32]) -> Vec<f32> {
        x.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((&v, &m), &s)| v * s + m)
            .collect()
    }

    /// Invert a single feature.
    pub fn inverse_feature(&self, index: usize, value: f32) -> f32 {
        value * self.std[index] + self.mean[index]
    }

    /// Scale a gradient expressed w.r.t. normalized inputs back to the raw
    /// input space (`d/dx = d/dx' · 1/std`).
    pub fn gradient_to_raw(&self, grad_normalized: &[f32]) -> Vec<f32> {
        grad_normalized
            .iter()
            .zip(&self.std)
            .map(|(&g, &s)| g / s)
            .collect()
    }
}

/// A supervised dataset of `(input, target)` vector pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    inputs: Vec<Vec<f32>>,
    targets: Vec<Vec<f32>>,
}

impl Dataset {
    /// Create a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadDataset`] if the lists are empty, have different
    /// lengths, or rows have inconsistent dimensions.
    pub fn new(inputs: Vec<Vec<f32>>, targets: Vec<Vec<f32>>) -> Result<Self, NnError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(NnError::BadDataset {
                what: format!(
                    "{} inputs vs {} targets (must be equal and nonzero)",
                    inputs.len(),
                    targets.len()
                ),
            });
        }
        let in_dim = inputs[0].len();
        let out_dim = targets[0].len();
        if inputs.iter().any(|r| r.len() != in_dim) || targets.iter().any(|r| r.len() != out_dim) {
            return Err(NnError::BadDataset {
                what: "inconsistent row dimensions".to_string(),
            });
        }
        Ok(Dataset { inputs, targets })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the dataset is empty (never true for constructed datasets).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.inputs[0].len()
    }

    /// Target dimensionality.
    pub fn target_dim(&self) -> usize {
        self.targets[0].len()
    }

    /// Borrow the raw inputs.
    pub fn inputs(&self) -> &[Vec<f32>] {
        &self.inputs
    }

    /// Borrow the raw targets.
    pub fn targets(&self) -> &[Vec<f32>] {
        &self.targets
    }

    /// Fit normalizers to the inputs and targets of this dataset.
    pub fn fit_normalizers(&self) -> (Normalizer, Normalizer) {
        (
            Normalizer::fit(&self.inputs),
            Normalizer::fit(&self.targets),
        )
    }

    /// Return a new dataset with both inputs and targets normalized.
    pub fn normalized(&self, input_norm: &Normalizer, target_norm: &Normalizer) -> Dataset {
        Dataset {
            inputs: self
                .inputs
                .iter()
                .map(|r| input_norm.transform(r))
                .collect(),
            targets: self
                .targets
                .iter()
                .map(|r| target_norm.transform(r))
                .collect(),
        }
    }

    /// Split into `(train, test)` with the given test fraction, shuffling
    /// with `rng` first.
    pub fn split<R: Rng + ?Sized>(&self, test_fraction: f64, rng: &mut R) -> (Dataset, Dataset) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let n_test = ((self.len() as f64) * test_fraction).round() as usize;
        let n_test = n_test.clamp(1, self.len().saturating_sub(1).max(1));
        let (test_idx, train_idx) = idx.split_at(n_test.min(self.len()));
        let pick = |ids: &[usize]| Dataset {
            inputs: ids.iter().map(|&i| self.inputs[i].clone()).collect(),
            targets: ids.iter().map(|&i| self.targets[i].clone()).collect(),
        };
        (pick(train_idx), pick(test_idx))
    }

    /// Materialize a batch of examples (by index) as matrices.
    pub fn batch(&self, indices: &[usize]) -> (Matrix, Matrix) {
        let xs: Vec<Vec<f32>> = indices.iter().map(|&i| self.inputs[i].clone()).collect();
        let ys: Vec<Vec<f32>> = indices.iter().map(|&i| self.targets[i].clone()).collect();
        (Matrix::from_rows(&xs), Matrix::from_rows(&ys))
    }

    /// The whole dataset as a pair of matrices.
    pub fn as_matrices(&self) -> (Matrix, Matrix) {
        (
            Matrix::from_rows(&self.inputs),
            Matrix::from_rows(&self.targets),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalizer_zero_mean_unit_std() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]];
        let norm = Normalizer::fit(&rows);
        let transformed: Vec<Vec<f32>> = rows.iter().map(|r| norm.transform(r)).collect();
        for j in 0..2 {
            let mean: f32 = transformed.iter().map(|r| r[j]).sum::<f32>() / 3.0;
            let var: f32 = transformed
                .iter()
                .map(|r| (r[j] - mean).powi(2))
                .sum::<f32>()
                / 3.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn normalizer_roundtrip() {
        let rows = vec![
            vec![1.0, -5.0, 3.0],
            vec![2.0, 0.0, 9.0],
            vec![0.5, 5.0, -3.0],
        ];
        let norm = Normalizer::fit(&rows);
        for r in &rows {
            let back = norm.inverse(&norm.transform(r));
            for (a, b) in back.iter().zip(r) {
                assert!((a - b).abs() < 1e-4);
            }
        }
        assert!((norm.inverse_feature(0, norm.transform(&rows[0])[0]) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn normalizer_handles_constant_features() {
        let rows = vec![vec![7.0], vec![7.0], vec![7.0]];
        let norm = Normalizer::fit(&rows);
        let t = norm.transform(&[7.0]);
        assert_eq!(t[0], 0.0);
        assert_eq!(norm.inverse(&t)[0], 7.0);
    }

    #[test]
    fn gradient_to_raw_divides_by_std() {
        let rows = vec![vec![0.0], vec![10.0]];
        let norm = Normalizer::fit(&rows); // std = 5
        let g = norm.gradient_to_raw(&[1.0]);
        assert!((g[0] - 0.2).abs() < 1e-6);
    }

    #[test]
    fn dataset_construction_and_split() {
        let xs: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let ys: Vec<Vec<f32>> = (0..20).map(|i| vec![2.0 * i as f32]).collect();
        let ds = Dataset::new(xs, ys).unwrap();
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.input_dim(), 1);
        assert_eq!(ds.target_dim(), 1);
        let mut rng = StdRng::seed_from_u64(0);
        let (train, test) = ds.split(0.25, &mut rng);
        assert_eq!(train.len() + test.len(), 20);
        assert_eq!(test.len(), 5);
    }

    #[test]
    fn dataset_rejects_mismatched_lengths() {
        assert!(Dataset::new(vec![vec![1.0]], vec![]).is_err());
        assert!(Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![vec![1.0]; 2]).is_err());
        assert!(Dataset::new(vec![], vec![]).is_err());
    }

    #[test]
    fn batch_materialization() {
        let xs: Vec<Vec<f32>> = (0..4).map(|i| vec![i as f32, 1.0]).collect();
        let ys: Vec<Vec<f32>> = (0..4).map(|i| vec![i as f32 * 3.0]).collect();
        let ds = Dataset::new(xs, ys).unwrap();
        let (bx, by) = ds.batch(&[0, 2]);
        assert_eq!(bx.rows(), 2);
        assert_eq!(bx.get(1, 0), 2.0);
        assert_eq!(by.get(1, 0), 6.0);
        let (ax, ay) = ds.as_matrices();
        assert_eq!(ax.rows(), 4);
        assert_eq!(ay.rows(), 4);
    }

    #[test]
    fn normalized_dataset_statistics() {
        let xs: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32, 100.0 - i as f32]).collect();
        let ys: Vec<Vec<f32>> = (0..50).map(|i| vec![(i * i) as f32]).collect();
        let ds = Dataset::new(xs, ys).unwrap();
        let (inorm, tnorm) = ds.fit_normalizers();
        let nds = ds.normalized(&inorm, &tnorm);
        let mean0: f32 = nds.inputs().iter().map(|r| r[0]).sum::<f32>() / 50.0;
        assert!(mean0.abs() < 1e-4);
    }
}
