//! # mm-nn
//!
//! A minimal, dependency-light dense neural-network library: the substrate
//! for the differentiable surrogate of *Mind Mappings* (ASPLOS 2021,
//! Section 4.1) and for the DDPG-flavoured reinforcement-learning baseline.
//!
//! The paper trains a multi-layer perceptron in PyTorch; this crate provides
//! the equivalent functionality in pure Rust:
//!
//! * [`Matrix`] — a small row-major `f32` matrix with the kernels we need;
//! * [`Linear`] / [`Activation`] / [`Mlp`] — dense layers with manual
//!   backpropagation producing gradients w.r.t. **parameters and inputs**
//!   (input gradients are what Phase 2's gradient search needs);
//! * [`Loss`] — MSE, MAE, and Huber losses (Section 5.5 / Figure 7b);
//! * [`optim`] — SGD with momentum and Adam, with step learning-rate decay;
//! * [`Normalizer`], [`Dataset`], [`Trainer`] — z-score normalization,
//!   mini-batch shuffling, and a supervised training loop with train/test
//!   loss curves (Figure 7a).
//!
//! ```
//! use mm_nn::{Mlp, Loss, optim::Sgd, Trainer, TrainConfig, Dataset};
//! use rand::SeedableRng;
//!
//! // Learn y = 2x on a handful of points.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2);
//! let xs: Vec<Vec<f32>> = (0..64).map(|i| vec![i as f32 / 64.0]).collect();
//! let ys: Vec<Vec<f32>> = xs.iter().map(|x| vec![2.0 * x[0]]).collect();
//! let dataset = Dataset::new(xs, ys).unwrap();
//! let mut mlp = Mlp::new(&[1, 8, 1], &mut rng);
//! let mut trainer = Trainer::new(TrainConfig { epochs: 50, batch_size: 8, ..Default::default() });
//! let history = trainer.fit(&mut mlp, &dataset, &mut mm_nn::optim::Sgd::new(0.05, 0.9), Loss::Mse, &mut rng);
//! assert!(history.final_train_loss() < 0.05);
//! # let _ = Sgd::new(0.1, 0.0);
//! ```

pub mod data;
pub mod layer;
pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod optim;
pub mod train;

pub use data::{Dataset, Normalizer};
pub use layer::{Activation, Linear};
pub use loss::Loss;
pub use matrix::Matrix;
pub use mlp::Mlp;
pub use train::{TrainConfig, TrainHistory, Trainer};

/// Errors from dataset construction and shape checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Input/target row counts differ or are empty.
    BadDataset {
        /// Description of the problem.
        what: String,
    },
    /// A matrix or vector had an unexpected shape.
    ShapeMismatch {
        /// Description of the mismatch.
        what: String,
    },
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::BadDataset { what } => write!(f, "bad dataset: {what}"),
            NnError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = NnError::BadDataset {
            what: "empty".into(),
        };
        assert!(e.to_string().contains("empty"));
        let e = NnError::ShapeMismatch { what: "row".into() };
        assert!(e.to_string().contains("row"));
    }
}
