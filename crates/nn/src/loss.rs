//! Regression losses: MSE, MAE, and Huber (Section 5.5, Figure 7b).
//!
//! The paper selects the Huber loss for surrogate training because it
//! behaves like MSE for small residuals and like MAE for large ones, which
//! stabilizes training in the presence of the heavy-tailed cost distribution
//! of the map space.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// Supported regression losses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error.
    Mse,
    /// Mean absolute error.
    Mae,
    /// Huber loss with the given transition point `delta`.
    Huber {
        /// Residual magnitude at which the loss switches from quadratic to
        /// linear behaviour.
        delta: f32,
    },
}

impl Loss {
    /// The paper's default: Huber with `delta = 1` (matching the normalized
    /// output scale).
    pub fn default_huber() -> Self {
        Loss::Huber { delta: 1.0 }
    }

    /// Loss value averaged over all elements of the batch.
    ///
    /// # Panics
    ///
    /// Panics if `prediction` and `target` shapes differ.
    pub fn value(&self, prediction: &Matrix, target: &Matrix) -> f32 {
        assert_eq!(
            (prediction.rows(), prediction.cols()),
            (target.rows(), target.cols()),
            "loss shape mismatch"
        );
        let n = (prediction.rows() * prediction.cols()).max(1) as f32;
        let mut total = 0.0f32;
        for (&p, &t) in prediction.as_slice().iter().zip(target.as_slice()) {
            let r = p - t;
            total += match *self {
                Loss::Mse => r * r,
                Loss::Mae => r.abs(),
                Loss::Huber { delta } => {
                    if r.abs() <= delta {
                        0.5 * r * r
                    } else {
                        delta * (r.abs() - 0.5 * delta)
                    }
                }
            };
        }
        total / n
    }

    /// Gradient of the averaged loss with respect to the predictions.
    ///
    /// # Panics
    ///
    /// Panics if `prediction` and `target` shapes differ.
    pub fn gradient(&self, prediction: &Matrix, target: &Matrix) -> Matrix {
        assert_eq!(
            (prediction.rows(), prediction.cols()),
            (target.rows(), target.cols()),
            "loss shape mismatch"
        );
        let n = (prediction.rows() * prediction.cols()).max(1) as f32;
        let mut grad = Matrix::zeros(prediction.rows(), prediction.cols());
        for ((g, &p), &t) in grad
            .as_mut_slice()
            .iter_mut()
            .zip(prediction.as_slice())
            .zip(target.as_slice())
        {
            let r = p - t;
            let sign = if r == 0.0 { 0.0 } else { r.signum() };
            *g = match *self {
                Loss::Mse => 2.0 * r,
                Loss::Mae => sign,
                Loss::Huber { delta } => {
                    if r.abs() <= delta {
                        r
                    } else {
                        delta * sign
                    }
                }
            } / n;
        }
        grad
    }
}

impl std::fmt::Display for Loss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Loss::Mse => write!(f, "MSE"),
            Loss::Mae => write!(f, "MAE"),
            Loss::Huber { delta } => write!(f, "Huber(delta={delta})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt() -> (Matrix, Matrix) {
        (
            Matrix::from_vec(1, 3, vec![1.0, -2.0, 4.0]),
            Matrix::from_vec(1, 3, vec![0.0, -2.0, 1.0]),
        )
    }

    #[test]
    fn mse_value_and_gradient() {
        let (p, t) = pt();
        let l = Loss::Mse;
        // residuals: 1, 0, 3 -> mean of squares = (1 + 0 + 9)/3
        assert!((l.value(&p, &t) - 10.0 / 3.0).abs() < 1e-6);
        let g = l.gradient(&p, &t);
        assert!((g.as_slice()[2] - 2.0 * 3.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn mae_value_and_gradient() {
        let (p, t) = pt();
        let l = Loss::Mae;
        assert!((l.value(&p, &t) - 4.0 / 3.0).abs() < 1e-6);
        let g = l.gradient(&p, &t);
        assert!((g.as_slice()[0] - 1.0 / 3.0).abs() < 1e-6);
        assert!((g.as_slice()[1]).abs() < 1e-6 || g.as_slice()[1].abs() <= 1.0 / 3.0);
    }

    #[test]
    fn huber_interpolates_between_mse_and_mae() {
        let (p, t) = pt();
        let l = Loss::Huber { delta: 1.0 };
        // residual 1 -> quadratic 0.5; residual 0 -> 0; residual 3 -> 1*(3-0.5)=2.5
        assert!((l.value(&p, &t) - (0.5 + 0.0 + 2.5) / 3.0).abs() < 1e-6);
        let g = l.gradient(&p, &t);
        // small residual: r / n ; large residual: delta*sign / n
        assert!((g.as_slice()[0] - 1.0 / 3.0).abs() < 1e-6);
        assert!((g.as_slice()[2] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let (p, t) = pt();
        for loss in [Loss::Mse, Loss::Mae, Loss::Huber { delta: 1.0 }] {
            let g = loss.gradient(&p, &t);
            let base = loss.value(&p, &t);
            let eps = 1e-3f32;
            for i in 0..3 {
                // Skip the kink of the non-smooth losses (residual exactly 0),
                // where the subgradient and the one-sided finite difference
                // legitimately disagree.
                if loss != Loss::Mse && (p.as_slice()[i] - t.as_slice()[i]).abs() < 1e-9 {
                    continue;
                }
                let mut pp = p.clone();
                pp.as_mut_slice()[i] += eps;
                let fd = (loss.value(&pp, &t) - base) / eps;
                assert!(
                    (fd - g.as_slice()[i]).abs() < 1e-2,
                    "{loss}: fd {fd} vs {}",
                    g.as_slice()[i]
                );
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Loss::Mse.to_string(), "MSE");
        assert_eq!(Loss::Mae.to_string(), "MAE");
        assert!(Loss::default_huber().to_string().contains("Huber"));
    }

    #[test]
    fn zero_residual_gives_zero_loss() {
        let p = Matrix::from_vec(2, 2, vec![1.0; 4]);
        for loss in [Loss::Mse, Loss::Mae, Loss::default_huber()] {
            assert_eq!(loss.value(&p, &p), 0.0);
            assert!(loss.gradient(&p, &p).as_slice().iter().all(|&g| g == 0.0));
        }
    }
}
