//! Optimizers: SGD with momentum (the paper's choice for surrogate
//! training, Section 5.5) and Adam (used by the RL baseline), plus a step
//! learning-rate schedule.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::mlp::{Mlp, MlpGrad};

/// Common interface for gradient-based parameter updates on an [`Mlp`].
pub trait Optimizer {
    /// Apply one update step given the gradients of the current mini-batch.
    fn step(&mut self, model: &mut Mlp, grads: &MlpGrad);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Override the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<(Matrix, Vec<f32>)>,
}

impl Sgd {
    /// Create an SGD optimizer. The paper uses `lr = 1e-2`, `momentum = 0.9`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    fn ensure_state(&mut self, model: &Mlp) {
        if self.velocity.len() != model.layers().len() {
            self.velocity = model
                .layers()
                .iter()
                .map(|l| {
                    (
                        Matrix::zeros(l.weight.rows(), l.weight.cols()),
                        vec![0.0; l.bias.len()],
                    )
                })
                .collect();
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut Mlp, grads: &MlpGrad) {
        self.ensure_state(model);
        for ((layer, grad), (vw, vb)) in model
            .layers_mut()
            .iter_mut()
            .zip(&grads.layers)
            .zip(&mut self.velocity)
        {
            for (v, g) in vw.as_mut_slice().iter_mut().zip(grad.weight.as_slice()) {
                *v = self.momentum * *v - self.lr * g;
            }
            for (w, v) in layer.weight.as_mut_slice().iter_mut().zip(vw.as_slice()) {
                *w += v;
            }
            for ((v, g), b) in vb.iter_mut().zip(&grad.bias).zip(&mut layer.bias) {
                *v = self.momentum * *v - self.lr * g;
                *b += *v;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba), used by the DDPG-style RL baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<(Matrix, Vec<f32>)>,
    v: Vec<(Matrix, Vec<f32>)>,
}

impl Adam {
    /// Create an Adam optimizer with the usual defaults for the betas.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    fn ensure_state(&mut self, model: &Mlp) {
        if self.m.len() != model.layers().len() {
            let zeros = || {
                model
                    .layers()
                    .iter()
                    .map(|l| {
                        (
                            Matrix::zeros(l.weight.rows(), l.weight.cols()),
                            vec![0.0; l.bias.len()],
                        )
                    })
                    .collect::<Vec<_>>()
            };
            self.m = zeros();
            self.v = zeros();
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut Mlp, grads: &MlpGrad) {
        self.ensure_state(model);
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (((layer, grad), (mw, mb)), (vw, vb)) in model
            .layers_mut()
            .iter_mut()
            .zip(&grads.layers)
            .zip(&mut self.m)
            .zip(&mut self.v)
        {
            for (((w, g), m), v) in layer
                .weight
                .as_mut_slice()
                .iter_mut()
                .zip(grad.weight.as_slice())
                .zip(mw.as_mut_slice())
                .zip(vw.as_mut_slice())
            {
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                let mhat = *m / b1t;
                let vhat = *v / b2t;
                *w -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            for (((b, g), m), v) in layer
                .bias
                .iter_mut()
                .zip(&grad.bias)
                .zip(mb.iter_mut())
                .zip(vb.iter_mut())
            {
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                let mhat = *m / b1t;
                let vhat = *v / b2t;
                *b -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Step learning-rate decay: multiply the learning rate by `gamma` every
/// `every_epochs` epochs (the paper decays by 0.1 every 25 epochs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepLr {
    /// Epoch interval between decays.
    pub every_epochs: usize,
    /// Multiplicative decay factor.
    pub gamma: f32,
}

impl StepLr {
    /// The schedule used in Section 5.5: ×0.1 every 25 epochs.
    pub fn paper_default() -> Self {
        StepLr {
            every_epochs: 25,
            gamma: 0.1,
        }
    }

    /// Apply the schedule at the start of `epoch` (0-based).
    pub fn apply(&self, epoch: usize, optimizer: &mut dyn Optimizer) {
        if epoch > 0 && self.every_epochs > 0 && epoch.is_multiple_of(self.every_epochs) {
            let lr = optimizer.learning_rate() * self.gamma;
            optimizer.set_learning_rate(lr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;
    use crate::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quadratic_fit(optimizer: &mut dyn Optimizer, steps: usize) -> f32 {
        // Fit y = 3x - 1 with a linear model; loss should drop substantially.
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Mlp::new(&[1, 1], &mut rng);
        let xs = Matrix::from_vec(8, 1, (0..8).map(|i| i as f32 / 8.0).collect());
        let ys = Matrix::from_vec(8, 1, (0..8).map(|i| 3.0 * i as f32 / 8.0 - 1.0).collect());
        let loss = Loss::Mse;
        let mut last = f32::MAX;
        for _ in 0..steps {
            let cache = model.forward_cached(&xs);
            last = loss.value(cache.output(), &ys);
            let grad_out = loss.gradient(cache.output(), &ys);
            let (grads, _) = model.backward(&cache, &grad_out);
            optimizer.step(&mut model, &grads);
        }
        last
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut opt = Sgd::new(0.1, 0.9);
        let final_loss = quadratic_fit(&mut opt, 200);
        assert!(final_loss < 0.01, "SGD failed to fit: {final_loss}");
    }

    #[test]
    fn adam_reduces_loss() {
        let mut opt = Adam::new(0.05);
        let final_loss = quadratic_fit(&mut opt, 200);
        assert!(final_loss < 0.01, "Adam failed to fit: {final_loss}");
    }

    #[test]
    fn step_lr_decays_at_interval() {
        let mut opt = Sgd::new(1.0, 0.0);
        let sched = StepLr {
            every_epochs: 10,
            gamma: 0.5,
        };
        sched.apply(0, &mut opt);
        assert_eq!(opt.learning_rate(), 1.0);
        sched.apply(5, &mut opt);
        assert_eq!(opt.learning_rate(), 1.0);
        sched.apply(10, &mut opt);
        assert_eq!(opt.learning_rate(), 0.5);
        sched.apply(20, &mut opt);
        assert_eq!(opt.learning_rate(), 0.25);
    }

    #[test]
    fn paper_default_schedule() {
        let s = StepLr::paper_default();
        assert_eq!(s.every_epochs, 25);
        assert!((s.gamma - 0.1).abs() < 1e-6);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.01);
        assert!((opt.learning_rate() - 0.01).abs() < 1e-9);
        opt.set_learning_rate(0.001);
        assert!((opt.learning_rate() - 0.001).abs() < 1e-9);
    }
}
