//! Supervised training loop producing the train/test loss curves of
//! Figure 7a.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::loss::Loss;
use crate::mlp::Mlp;
use crate::optim::{Optimizer, StepLr};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (the paper uses 128).
    pub batch_size: usize,
    /// Fraction of the data held out for the test-loss curve.
    pub test_fraction: f64,
    /// Optional step learning-rate schedule.
    pub lr_schedule: Option<StepLr>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 128,
            test_fraction: 0.1,
            lr_schedule: Some(StepLr::paper_default()),
        }
    }
}

/// Per-epoch train/test losses recorded during training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TrainHistory {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f32>,
    /// Held-out test loss per epoch.
    pub test_loss: Vec<f32>,
}

impl TrainHistory {
    /// Training loss of the final epoch (`INFINITY` if training never ran).
    pub fn final_train_loss(&self) -> f32 {
        self.train_loss.last().copied().unwrap_or(f32::INFINITY)
    }

    /// Test loss of the final epoch (`INFINITY` if training never ran).
    pub fn final_test_loss(&self) -> f32 {
        self.test_loss.last().copied().unwrap_or(f32::INFINITY)
    }
}

/// Mini-batch supervised trainer.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Create a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Train `model` on `dataset` (already normalized by the caller if
    /// desired), returning the loss history. The dataset is split into
    /// train/test portions internally.
    pub fn fit<R: Rng + ?Sized>(
        &mut self,
        model: &mut Mlp,
        dataset: &Dataset,
        optimizer: &mut dyn Optimizer,
        loss: Loss,
        rng: &mut R,
    ) -> TrainHistory {
        let (train, test) = if dataset.len() >= 4 && self.config.test_fraction > 0.0 {
            dataset.split(self.config.test_fraction, rng)
        } else {
            (dataset.clone(), dataset.clone())
        };
        let mut history = TrainHistory::default();
        let batch = self.config.batch_size.max(1);

        for epoch in 0..self.config.epochs {
            if let Some(sched) = self.config.lr_schedule {
                sched.apply(epoch, optimizer);
            }
            let mut order: Vec<usize> = (0..train.len()).collect();
            order.shuffle(rng);
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(batch) {
                let (x, y) = train.batch(chunk);
                let cache = model.forward_cached(&x);
                epoch_loss += loss.value(cache.output(), &y) as f64;
                let grad_out = loss.gradient(cache.output(), &y);
                let (grads, _) = model.backward(&cache, &grad_out);
                optimizer.step(model, &grads);
                batches += 1;
            }
            history
                .train_loss
                .push((epoch_loss / batches.max(1) as f64) as f32);
            history.test_loss.push(Self::evaluate(model, &test, loss));
        }
        history
    }

    /// Mean loss of `model` over a dataset.
    pub fn evaluate(model: &Mlp, dataset: &Dataset, loss: Loss) -> f32 {
        let (x, y) = dataset.as_matrices();
        let out = model.forward(&x);
        loss.value(&out, &y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Sgd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset(n: usize) -> Dataset {
        // y = [x0 + x1, x0 * 0.5 - x1]
        let xs: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let a = (i as f32 * 0.37).sin();
                let b = (i as f32 * 0.11).cos();
                vec![a, b]
            })
            .collect();
        let ys: Vec<Vec<f32>> = xs
            .iter()
            .map(|x| vec![x[0] + x[1], 0.5 * x[0] - x[1]])
            .collect();
        Dataset::new(xs, ys).unwrap()
    }

    #[test]
    fn training_reduces_loss_on_toy_regression() {
        let mut rng = StdRng::seed_from_u64(0);
        let ds = toy_dataset(256);
        let mut model = Mlp::new(&[2, 16, 2], &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 40,
            batch_size: 32,
            test_fraction: 0.2,
            lr_schedule: None,
        });
        let mut opt = Sgd::new(0.05, 0.9);
        let hist = trainer.fit(&mut model, &ds, &mut opt, Loss::Mse, &mut rng);
        assert_eq!(hist.train_loss.len(), 40);
        assert!(
            hist.final_train_loss() < 0.02,
            "{}",
            hist.final_train_loss()
        );
        assert!(hist.final_test_loss() < 0.05, "{}", hist.final_test_loss());
        assert!(hist.train_loss[0] > hist.final_train_loss());
    }

    #[test]
    fn training_with_huber_and_adam_converges() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = toy_dataset(256);
        let mut model = Mlp::new(&[2, 16, 2], &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 30,
            batch_size: 32,
            test_fraction: 0.2,
            lr_schedule: None,
        });
        let mut opt = Adam::new(0.01);
        let hist = trainer.fit(&mut model, &ds, &mut opt, Loss::default_huber(), &mut rng);
        assert!(
            hist.final_train_loss() < 0.02,
            "{}",
            hist.final_train_loss()
        );
    }

    #[test]
    fn lr_schedule_is_applied() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = toy_dataset(64);
        let mut model = Mlp::new(&[2, 8, 2], &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 6,
            batch_size: 16,
            test_fraction: 0.2,
            lr_schedule: Some(StepLr {
                every_epochs: 2,
                gamma: 0.5,
            }),
        });
        let mut opt = Sgd::new(0.1, 0.0);
        let _ = trainer.fit(&mut model, &ds, &mut opt, Loss::Mse, &mut rng);
        // Decayed at epochs 2 and 4 (x0.5 twice).
        assert!((opt.learning_rate() - 0.025).abs() < 1e-6);
    }

    #[test]
    fn empty_history_reports_infinity() {
        let h = TrainHistory::default();
        assert!(h.final_train_loss().is_infinite());
        assert!(h.final_test_loss().is_infinite());
    }

    #[test]
    fn evaluate_matches_manual_loss() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = toy_dataset(16);
        let model = Mlp::new(&[2, 4, 2], &mut rng);
        let l = Trainer::evaluate(&model, &ds, Loss::Mse);
        assert!(l.is_finite() && l >= 0.0);
    }
}
