//! A small row-major `f32` matrix with exactly the kernels the MLP needs.
//!
//! Deliberately minimal: the surrogate networks are small enough (a few
//! hundred thousand parameters in the default experiment configuration) that
//! a cache-friendly naive GEMM is adequate, and keeping the type simple makes
//! the backpropagation code easy to audit.

use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Build from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row lengths");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// A 1×n row vector.
    pub fn row_vector(v: &[f32]) -> Self {
        Matrix::from_vec(1, v.len(), v.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` (standard matrix product).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_transpose_b shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                let mut acc = 0.0f32;
                for (a, b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// `selfᵀ · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn transpose_a_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "transpose_a_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let arow = self.row(k);
            let brow = other.row(k);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sum over rows, yielding a length-`cols` vector.
    pub fn column_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transposed_products_are_consistent() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(4, 3, vec![1., 0., 1., 2., 1., 0., 0., 3., 1., 1., 1., 1.]);
        // a · bᵀ == a.matmul(b.transpose())
        let direct = a.matmul_transpose_b(&b);
        let via_t = a.matmul(&b.transpose());
        assert_eq!(direct, via_t);

        let c = Matrix::from_vec(2, 4, vec![1., 2., 3., 4., 5., 6., 7., 8.]);
        // aᵀ · c == a.transpose().matmul(c)
        let direct = a.transpose_a_matmul(&c);
        let via_t = a.transpose().matmul(&c);
        assert_eq!(direct, via_t);
    }

    #[test]
    fn column_sums_and_norm() {
        let a = Matrix::from_vec(2, 2, vec![3., 4., 1., 2.]);
        assert_eq!(a.column_sums(), vec![4., 6.]);
        assert!((a.norm() - (9.0f32 + 16.0 + 1.0 + 4.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn from_rows_and_accessors() {
        let a = Matrix::from_rows(&[vec![1., 2.], vec![3., 4.]]);
        assert_eq!(a.get(1, 0), 3.0);
        let mut a = a;
        a.set(1, 0, 9.0);
        assert_eq!(a.row(1), &[9., 4.]);
        a.row_mut(0)[1] = 7.0;
        assert_eq!(a.get(0, 1), 7.0);
        assert_eq!(Matrix::row_vector(&[1., 2., 3.]).cols(), 3);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![1., 1., 1.]);
        a.add_assign(&b);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[4., 6., 8.]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "matrix data length mismatch")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }
}
