//! The multi-layer perceptron used as the differentiable surrogate
//! (Section 4.1) and as the actor/critic networks of the RL baseline.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::layer::{Activation, Linear, LinearGrad};
use crate::matrix::Matrix;

/// A sequential MLP: `Linear → act → Linear → act → … → Linear`.
///
/// The hidden activation is configurable (ReLU by default); the output layer
/// is linear (identity) unless an output activation is set, which the RL
/// actor uses to bound its actions with `tanh`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_activation: Activation,
    output_activation: Activation,
}

/// Per-layer parameter gradients produced by [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct MlpGrad {
    /// Gradients for each [`Linear`] layer, in layer order.
    pub layers: Vec<LinearGrad>,
}

/// Cached activations from a forward pass, needed for backpropagation.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// Input to each linear layer (post-activation of the previous layer).
    inputs: Vec<Matrix>,
    /// Pre-activation output of each linear layer.
    pre_activations: Vec<Matrix>,
    /// Final network output (post output-activation).
    output: Matrix,
}

impl ForwardCache {
    /// The network output for the cached forward pass.
    pub fn output(&self) -> &Matrix {
        &self.output
    }
}

impl Mlp {
    /// Create an MLP with the given layer widths, e.g. `&[62, 256, 256, 12]`,
    /// ReLU hidden activations and a linear output.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new<R: Rng + ?Sized>(widths: &[usize], rng: &mut R) -> Self {
        Self::with_activations(widths, Activation::Relu, Activation::Identity, rng)
    }

    /// Create an MLP with explicit hidden/output activations.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given or any width is zero.
    pub fn with_activations<R: Rng + ?Sized>(
        widths: &[usize],
        hidden: Activation,
        output: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(
            widths.len() >= 2,
            "MLP needs at least input and output widths"
        );
        assert!(
            widths.iter().all(|&w| w > 0),
            "layer widths must be nonzero"
        );
        let layers = widths
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Mlp {
            layers,
            hidden_activation: hidden,
            output_activation: output,
        }
    }

    /// Number of inputs.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, Linear::in_features)
    }

    /// Number of outputs.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, Linear::out_features)
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(Linear::num_parameters).sum()
    }

    /// The linear layers (read-only).
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// The linear layers (mutable; used by optimizers).
    pub fn layers_mut(&mut self) -> &mut [Linear] {
        &mut self.layers
    }

    /// Forward pass on a batch, returning outputs and the cache needed for
    /// backpropagation.
    pub fn forward_cached(&self, x: &Matrix) -> ForwardCache {
        let n = self.layers.len();
        let mut inputs = Vec::with_capacity(n);
        let mut pre_activations = Vec::with_capacity(n);
        let mut cur = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            inputs.push(cur.clone());
            let pre = layer.forward(&cur);
            pre_activations.push(pre.clone());
            let act = if i + 1 == n {
                self.output_activation
            } else {
                self.hidden_activation
            };
            cur = act.forward(&pre);
        }
        ForwardCache {
            inputs,
            pre_activations,
            output: cur,
        }
    }

    /// Forward pass returning just the outputs.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_cached(x).output
    }

    /// Convenience: forward pass on a single example.
    pub fn predict(&self, x: &[f32]) -> Vec<f32> {
        self.forward(&Matrix::row_vector(x)).as_slice().to_vec()
    }

    /// Forward pass on a batch of examples in **one** matrix pass: the whole
    /// batch goes through each layer as a single matmul instead of one
    /// network traversal per example. This is the primitive behind batched
    /// surrogate evaluation (`CostEvaluator::evaluate_batch`).
    pub fn predict_batch(&self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        if xs.is_empty() {
            return Vec::new();
        }
        let y = self.forward(&Matrix::from_rows(xs));
        (0..y.rows()).map(|r| y.row(r).to_vec()).collect()
    }

    /// Backpropagate `grad_output` (dL/d output, shape `[batch, out]`)
    /// through the network, returning parameter gradients and the gradient
    /// with respect to the **input** batch.
    pub fn backward(&self, cache: &ForwardCache, grad_output: &Matrix) -> (MlpGrad, Matrix) {
        let n = self.layers.len();
        let mut layer_grads: Vec<Option<LinearGrad>> = (0..n).map(|_| None).collect();
        let mut grad = grad_output.clone();
        for i in (0..n).rev() {
            let act = if i + 1 == n {
                self.output_activation
            } else {
                self.hidden_activation
            };
            grad = act.backward(&cache.pre_activations[i], &grad);
            let (grad_in, pgrad) = self.layers[i].backward(&cache.inputs[i], &grad);
            layer_grads[i] = Some(pgrad);
            grad = grad_in;
        }
        (
            MlpGrad {
                layers: layer_grads
                    .into_iter()
                    // mm-lint: allow(panic): the backward pass above fills
                    // every slot; a hole is a backprop bug.
                    .map(|g| g.expect("gradient computed for every layer"))
                    .collect(),
            },
            grad,
        )
    }

    /// Gradient of a scalar objective `sum(weights ⊙ output)` with respect to
    /// a single input vector. This is the primitive used by Phase 2 of Mind
    /// Mappings: the gradient of the surrogate-predicted cost w.r.t. the
    /// candidate mapping.
    pub fn input_gradient(&self, x: &[f32], output_weights: &[f32]) -> Vec<f32> {
        let cache = self.forward_cached(&Matrix::row_vector(x));
        let grad_out = Matrix::row_vector(output_weights);
        let (_, grad_in) = self.backward(&cache, &grad_out);
        grad_in.as_slice().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp(seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(&[5, 16, 8, 3], &mut rng)
    }

    #[test]
    fn shapes_and_parameter_count() {
        let net = mlp(0);
        assert_eq!(net.input_dim(), 5);
        assert_eq!(net.output_dim(), 3);
        assert_eq!(net.layers().len(), 3);
        let expected = (5 * 16 + 16) + (16 * 8 + 8) + (8 * 3 + 3);
        assert_eq!(net.num_parameters(), expected);
    }

    #[test]
    fn forward_is_deterministic_and_correct_shape() {
        let net = mlp(1);
        let x = Matrix::from_vec(4, 5, (0..20).map(|i| i as f32 * 0.05).collect());
        let y1 = net.forward(&x);
        let y2 = net.forward(&x);
        assert_eq!(y1, y2);
        assert_eq!((y1.rows(), y1.cols()), (4, 3));
        assert_eq!(net.predict(&[0.1; 5]).len(), 3);
    }

    #[test]
    fn parameter_gradients_match_finite_differences() {
        let net = mlp(2);
        let x = Matrix::from_vec(3, 5, (0..15).map(|i| (i as f32 * 0.13).sin()).collect());
        let cache = net.forward_cached(&x);
        // Objective: sum of all outputs.
        let ones = Matrix::from_vec(3, 3, vec![1.0; 9]);
        let (grads, _) = net.backward(&cache, &ones);

        let objective = |n: &Mlp| -> f32 { n.forward(&x).as_slice().iter().sum() };
        let base = objective(&net);
        let eps = 1e-2f32;

        // Spot-check a few weights in different layers.
        for (li, r, c) in [(0usize, 0usize, 1usize), (1, 3, 2), (2, 2, 5)] {
            let mut p = net.clone();
            let w = p.layers_mut()[li].weight.get(r, c);
            p.layers_mut()[li].weight.set(r, c, w + eps);
            let fd = (objective(&p) - base) / eps;
            let analytic = grads.layers[li].weight.get(r, c);
            assert!(
                (fd - analytic).abs() < 0.05 * (1.0 + analytic.abs()),
                "layer {li} weight ({r},{c}): fd {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let net = mlp(3);
        let x: Vec<f32> = (0..5).map(|i| 0.3 * i as f32 - 0.5).collect();
        let w = [1.0f32, -2.0, 0.5];
        let grad = net.input_gradient(&x, &w);
        assert_eq!(grad.len(), 5);

        let objective = |xx: &[f32]| -> f32 {
            net.predict(xx)
                .iter()
                .zip(&w)
                .map(|(o, wi)| o * wi)
                .sum::<f32>()
        };
        let base = objective(&x);
        let eps = 1e-2f32;
        for i in 0..5 {
            let mut xp = x.clone();
            xp[i] += eps;
            let fd = (objective(&xp) - base) / eps;
            assert!(
                (fd - grad[i]).abs() < 0.05 * (1.0 + grad[i].abs()),
                "input {i}: fd {fd} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn predict_batch_matches_per_example_predict() {
        let net = mlp(6);
        let xs: Vec<Vec<f32>> = (0..9)
            .map(|i| (0..5).map(|j| ((i * 5 + j) as f32 * 0.07).cos()).collect())
            .collect();
        let batched = net.predict_batch(&xs);
        assert_eq!(batched.len(), xs.len());
        for (x, y) in xs.iter().zip(&batched) {
            assert_eq!(&net.predict(x), y);
        }
        assert!(net.predict_batch(&[]).is_empty());
    }

    #[test]
    fn tanh_output_bounds_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = Mlp::with_activations(&[3, 8, 2], Activation::Relu, Activation::Tanh, &mut rng);
        let y = net.predict(&[100.0, -50.0, 30.0]);
        assert!(y.iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_single_width() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = Mlp::new(&[4], &mut rng);
    }
}
