//! Map ResNet Conv_4 onto the paper's 256-PE accelerator with the parallel
//! [`Mapper`]: the map space is sharded across search threads (each running
//! its own simulated-annealing instance over a deterministically derived RNG
//! stream), threads sync a shared best mapping, and Timeloop-style
//! termination policies bound the run.
//!
//! ```bash
//! cargo run --release --example parallel_mapper
//! # knobs:
//! MM_MAPPER_THREADS=8 MM_MAPPER_SEARCH_SIZE=20000 cargo run --release --example parallel_mapper
//! # disjoint map-space shards (loop-order/tiling slices) + work stealing:
//! MM_MAPPER_SHARDS=8 MM_MAPPER_SHARD_SPACE=1 MM_MAPPER_STEAL=1 cargo run --release --example parallel_mapper
//! # global-best sync policy (off | anchor | restart | annealed):
//! MM_MAPPER_SHARDS=4 MM_MAPPER_SYNC=anchor cargo run --release --example parallel_mapper
//! ```

use std::sync::Arc;

use mind_mappings::prelude::*;
use mm_mapper::{
    Mapper, MapperConfig, MapperSchedule, ModelEvaluator, OptMetric, StopReason, SyncPolicy,
    TerminationPolicy,
};
use mm_search::AnnealingConfig;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let threads = env_u64("MM_MAPPER_THREADS", 4) as usize;
    let search_size = env_u64("MM_MAPPER_SEARCH_SIZE", 8_000);
    let shards = env_u64("MM_MAPPER_SHARDS", threads as u64) as usize;
    let shard_space = env_u64("MM_MAPPER_SHARD_SPACE", 0) != 0;
    let schedule = if env_u64("MM_MAPPER_STEAL", 0) != 0 {
        MapperSchedule::WorkStealing
    } else {
        MapperSchedule::Deterministic
    };
    let sync = match std::env::var("MM_MAPPER_SYNC").as_deref() {
        Ok("anchor") => SyncPolicy::Anchor,
        Ok("restart") => SyncPolicy::Restart { patience: 3 },
        Ok("annealed") => SyncPolicy::Annealed {
            start: 0.9,
            end: 0.1,
        },
        _ => SyncPolicy::Off,
    };

    let arch = evaluated_accelerator();
    let target = table1::by_name("ResNet Conv_4").expect("table 1 problem");
    let space = MapSpace::new(target.problem.clone(), arch.mapping_constraints());
    let model = CostModel::new(arch, target.problem.clone());
    let lower_bound = model.lower_bound().edp;

    println!("problem:    {}", target.problem);
    println!(
        "map space:  ~10^{:.1} mappings",
        space.log10_size_estimate()
    );
    println!(
        "threads:    {threads}, shards: {shards} (space sharding: {shard_space}, schedule: {schedule:?}, sync: {sync})"
    );
    println!("search:     {search_size} evaluations\n");

    // Optimize EDP first; break near-ties by DRAM traffic (a prioritized
    // optimization_metrics list, Timeloop-mapper style).
    let evaluator = Arc::new(ModelEvaluator::with_metrics(
        model.clone(),
        vec![OptMetric::Edp, OptMetric::LastLevelAccesses],
    ));

    let mapper = Mapper::new(MapperConfig {
        threads,
        shards: Some(shards),
        shard_space,
        schedule,
        seed: 1,
        sync_interval: 128,
        sync,
        termination: TerminationPolicy::search_size(search_size).with_victory_condition(2_000),
        ..MapperConfig::default()
    });
    let report = mapper.run(&space, evaluator, |_| {
        Box::new(SimulatedAnnealing::new(AnnealingConfig::default()))
    });

    println!(
        "evaluated {} mappings in {:.2}s  ({:.0} evals/s aggregate)",
        report.total_evaluations, report.wall_time_s, report.evals_per_sec
    );
    for t in &report.shards {
        let best = t
            .best
            .as_ref()
            .map_or(f64::INFINITY, |(_, eval)| eval.primary());
        println!(
            "  shard {}: {:>6} evals, best EDP {:.3e} J·s, stopped by {:?}",
            t.shard, t.evaluations, best, t.stop
        );
    }

    let (Some(best_mapping), Some(metrics)) =
        (report.best_mapping.as_ref(), report.best_metrics.as_ref())
    else {
        eprintln!("no mappings were evaluated — set MM_MAPPER_SEARCH_SIZE to at least 1");
        std::process::exit(1);
    };
    assert!(space.is_member(best_mapping));
    println!("\nbest mapping found:");
    println!("  EDP:           {:.3e} J·s", metrics.metrics[0]);
    println!("  DRAM accesses: {:.3e}", metrics.metrics[1]);
    println!(
        "  vs theoretical lower bound: {:.1}x",
        metrics.metrics[0] / lower_bound
    );
    let random_cost = {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let samples = 50;
        (0..samples)
            .map(|_| model.edp(&space.random_mapping(&mut rng)))
            .sum::<f64>()
            / samples as f64
    };
    println!(
        "  vs average random mapping:  {:.1}x better",
        random_cost / metrics.metrics[0]
    );

    if report.shards.iter().any(|t| t.stop == StopReason::Victory) {
        println!(
            "\n(some shards declared victory early — raise the victory condition to search longer)"
        );
    }
}
