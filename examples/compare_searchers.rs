//! Compare all mapping-space search methods (Random, SA, GA, RL, Mind
//! Mappings) head-to-head on one CNN layer — a miniature version of the
//! paper's Figure 5 experiment.
//!
//! ```bash
//! cargo run --release --example compare_searchers
//! ```
//!
//! All methods get the same number of cost-function evaluations
//! (surrogate evaluations in the case of Mind Mappings), and results are
//! reported as EDP normalized to the algorithmic minimum, exactly as in the
//! paper's plots.

use mind_mappings::prelude::*;
use mind_mappings::workloads::cnn::CnnFamily;
use mm_core::GradientSearch;
use mm_search::{AnnealingConfig, DdpgAgent, DdpgConfig, GeneticConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let arch = evaluated_accelerator();
    let iterations = 800u64;

    // Phase 1 for Mind Mappings.
    println!("training the CNN-Layer surrogate…");
    let phase1 = Phase1Config {
        num_samples: 8_000,
        epochs: 25,
        hidden_layers: vec![64, 256, 128, 64],
        ..Phase1Config::default_experiment()
    };
    let (mm, _) = MindMappings::train(arch.clone(), &CnnFamily::default(), &phase1, &mut rng)
        .expect("surrogate training");

    let layer = table1::by_name("AlexNet Conv_4")
        .expect("table 1 problem")
        .problem;
    let space = MapSpace::new(layer.clone(), arch.mapping_constraints());
    let model = CostModel::new(arch.clone(), layer.clone());
    let lb = model.lower_bound().edp;
    println!("target: {layer}\nbudget: {iterations} cost-function evaluations per method\n");

    let mut results: Vec<(String, f64)> = Vec::new();

    // Black-box baselines query the reference cost model.
    let mut baselines: Vec<Box<dyn Searcher>> = vec![
        Box::new(RandomSearch::new()),
        Box::new(SimulatedAnnealing::new(AnnealingConfig::default())),
        Box::new(GeneticAlgorithm::new(GeneticConfig::default())),
        Box::new(DdpgAgent::new(DdpgConfig::default())),
    ];
    for searcher in &mut baselines {
        let mut objective = CostModelObjective::new(model.clone());
        let trace = searcher.search(
            &space,
            &mut objective,
            Budget::iterations(iterations),
            &mut rng,
        );
        results.push((searcher.name().to_string(), trace.best_cost / lb));
    }

    // Mind Mappings queries its surrogate instead.
    let gs = GradientSearch::new(mm.surrogate(), layer.clone(), Phase2Config::default())
        .expect("family match");
    let trace = gs.run(Budget::iterations(iterations), &model, &mut rng);
    results.push(("MM (this paper)".to_string(), trace.best_cost / lb));

    results.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!("{:<18} {:>28}", "method", "best EDP / algorithmic minimum");
    println!("{}", "-".repeat(48));
    for (name, edp) in &results {
        println!("{name:<18} {edp:>28.2}");
    }
    println!("\n(lower is better; 1.0 would be the possibly-unachievable lower bound)");
}
