//! Quickstart: train a small surrogate for the 1-D convolution family and
//! use Mind Mappings to find a low-EDP mapping for an unseen problem.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! This walks through the whole pipeline at toy scale (a few seconds):
//!
//! 1. describe the accelerator and the target algorithm family;
//! 2. Phase 1 — sample valid mappings, label them with the analytical cost
//!    model, and train the differentiable surrogate;
//! 3. Phase 2 — projected gradient descent on the surrogate for a *new*
//!    problem the surrogate never saw during training;
//! 4. compare the found mapping against random sampling and the theoretical
//!    lower bound.

use mind_mappings::prelude::*;
use mind_mappings::workloads::conv1d::Conv1dFamily;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0);

    // 1. The accelerator (a small 16-PE configuration for the example) and
    //    the algorithm family (1-D convolutions of varying width/filter).
    let arch = Architecture::example();
    let family = Conv1dFamily::default();
    println!("accelerator: {arch}");

    // 2. Phase 1: train the surrogate (offline, once per algorithm family).
    println!("phase 1: training the surrogate…");
    let (mm, history) =
        MindMappings::train(arch.clone(), &family, &Phase1Config::quick(), &mut rng)
            .expect("surrogate training");
    println!(
        "  trained: final train loss {:.4}, test loss {:.4}",
        history.final_train_loss(),
        history.final_test_loss()
    );

    // 3. Phase 2: search for a mapping of an unseen problem.
    let problem = ProblemSpec::conv1d(2000, 7);
    println!("phase 2: searching mappings for {problem}");
    let trace = mm.search(&problem, 1000, &mut rng);
    let best = trace.best_mapping.as_ref().expect("a mapping was found");
    assert!(mm.is_member(&problem, best));

    // 4. Compare against random mappings and the algorithmic minimum.
    let model = CostModel::new(arch, problem.clone());
    let space = mm.map_space(&problem);
    let mut random_mean = 0.0;
    for _ in 0..50 {
        random_mean += model.edp(&space.random_mapping(&mut rng));
    }
    random_mean /= 50.0;

    println!("results (energy-delay product, joule-seconds):");
    println!("  algorithmic minimum : {:.3e}", model.lower_bound().edp);
    println!(
        "  Mind Mappings best  : {:.3e}  ({:.1}x above the bound)",
        trace.best_cost,
        trace.best_cost / model.lower_bound().edp
    );
    println!(
        "  random mapping mean : {:.3e}  ({:.1}x above the bound)",
        random_mean,
        random_mean / model.lower_bound().edp
    );
    println!(
        "  improvement over random: {:.1}x",
        random_mean / trace.best_cost
    );
}
