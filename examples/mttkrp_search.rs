//! Map the MTTKRP tensor-algebra kernel (Table 1's MTTKRP_0 and MTTKRP_1)
//! onto the paper's accelerator with Mind Mappings, demonstrating that the
//! same framework works across target algorithms without any domain-specific
//! heuristics.
//!
//! ```bash
//! cargo run --release --example mttkrp_search
//! ```
//!
//! One surrogate is trained for the whole MTTKRP family and then reused for
//! both target shapes (Section 5.3: one surrogate per algorithm), including
//! shapes it never saw during training.

use mind_mappings::prelude::*;
use mind_mappings::workloads::mttkrp::MttkrpFamily;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2);
    let arch = evaluated_accelerator();
    println!("accelerator: {arch}");

    println!("training the MTTKRP surrogate…");
    let phase1 = Phase1Config {
        num_samples: 6_000,
        epochs: 25,
        hidden_layers: vec![64, 128, 64],
        ..Phase1Config::default_experiment()
    };
    let (mm, _) = MindMappings::train(arch.clone(), &MttkrpFamily::default(), &phase1, &mut rng)
        .expect("surrogate training");

    for target in table1::mttkrp_problems() {
        let problem = target.problem;
        let model = CostModel::new(arch.clone(), problem.clone());
        println!("\nsearching mappings for {problem}");
        let trace = mm.search(&problem, 1_500, &mut rng);
        let best = trace.best_mapping.as_ref().expect("mapping found");
        let cost = model.evaluate(best);

        // Black-box baseline for context: simulated annealing with the same
        // number of cost-function queries.
        let space = mm.map_space(&problem);
        let mut sa = SimulatedAnnealing::default();
        let mut objective = CostModelObjective::new(model.clone());
        let sa_trace = sa.search(&space, &mut objective, Budget::iterations(1_500), &mut rng);

        println!(
            "  algorithmic minimum EDP : {:.3e} J·s",
            model.lower_bound().edp
        );
        println!(
            "  Mind Mappings           : {:.3e} J·s ({:.1}x bound, utilization {:.0}%)",
            cost.edp,
            cost.edp / model.lower_bound().edp,
            cost.utilization * 100.0
        );
        println!(
            "  Simulated Annealing     : {:.3e} J·s ({:.1}x bound)",
            sa_trace.best_cost,
            sa_trace.best_cost / model.lower_bound().edp
        );
    }
}
