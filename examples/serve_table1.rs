//! Serve the whole Table 1 problem set through one multi-tenant
//! [`MappingService`]: concurrent requests from two tenants are admitted
//! through the bounded queue, their per-layer jobs share a single
//! evaluation pool under fair-share scheduling, repeated shapes replay from
//! the result cache, and each report sums energy/delay/EDP across the
//! network.
//!
//! ```bash
//! cargo run --release --example serve_table1
//! # knobs:
//! MM_SERVE_WORKERS=8 MM_SERVE_SEARCH_SIZE=20000 cargo run --release --example serve_table1
//! ```

use mind_mappings::prelude::*;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let workers = env_u64("MM_SERVE_WORKERS", 4) as usize;
    let search_size = env_u64("MM_SERVE_SEARCH_SIZE", 4_000);

    let net = table1_network();
    let service_config = ServiceConfig::default()
        .with_workers(workers)
        .with_max_active_jobs(workers.max(2))
        .with_queue_depth(8);
    let mut service = MappingService::new(evaluated_accelerator(), service_config);
    let request = RequestConfig::default()
        .with_seed(1)
        .with_search_size(search_size);

    println!(
        "serving {net} over {} shared pool workers, {search_size} evals/layer\n",
        service.pool_workers()
    );
    let handle = service
        .submit(&net, request.clone().with_tenant("team-a"))
        .expect("queue has room");
    let report = service.wait(handle).expect("request completes");

    println!(
        "{:<18} {:>6} {:>13} {:>13} {:>13}  cache",
        "layer", "evals", "EDP (J·s)", "energy (pJ)", "delay (s)"
    );
    for layer in &report.layers {
        println!(
            "{:<18} {:>6} {:>13.3e} {:>13.3e} {:>13.3e}  {}",
            layer.layer,
            layer.evaluations,
            layer.edp(),
            layer.energy_pj().unwrap_or(f64::NAN),
            layer.delay_s().unwrap_or(f64::NAN),
            if layer.cache_hit { "hit" } else { "miss" },
        );
    }
    println!(
        "\n{} unique searches, {} cache hits, {} evaluations in {:.2}s ({:.0} evals/s)",
        report.unique_searches,
        report.cache_hits,
        report.total_evaluations,
        report.wall_time_s,
        report.evals_per_sec
    );
    println!(
        "aggregate: energy {:.3e} pJ, delay {:.3e} s, network EDP {:.3e} J·s (Σ layer EDP {:.3e})",
        report.aggregate.total_energy_pj.unwrap(),
        report.aggregate.total_delay_s.unwrap(),
        report.aggregate.total_edp_js.unwrap(),
        report.aggregate.sum_layer_edp_js,
    );

    // Two more tenants submit concurrently: team-b re-requests the same
    // network (answered from cache) while team-c searches fresh shapes under
    // a different seed, all interleaved over the one pool.
    let cached = service
        .submit(&net, request.clone().with_tenant("team-b"))
        .expect("queue has room");
    let fresh = service
        .submit(
            &net,
            request.with_seed(2).with_tenant("team-c").with_priority(2),
        )
        .expect("queue has room");
    let again = service.wait(cached).expect("replay completes");
    let other = service.wait(fresh).expect("fresh request completes");
    println!(
        "\nteam-b replay: {} cache hits, {} fresh evaluations, {:.4}s",
        again.cache_hits, again.total_evaluations, again.wall_time_s
    );
    println!(
        "team-c (seed 2, priority 2): {} fresh searches, {} evaluations, {:.2}s",
        other.unique_searches, other.total_evaluations, other.wall_time_s
    );
    assert_eq!(again.total_evaluations, 0);
    for (a, b) in report.layers.iter().zip(&again.layers) {
        assert_eq!(
            a.best_mapping, b.best_mapping,
            "cache replays the identical mapping"
        );
        assert_eq!(a.best_metrics, b.best_metrics);
    }
    assert_ne!(
        report.layers[0].best_mapping, other.layers[0].best_mapping,
        "a different seed searches differently"
    );
}
