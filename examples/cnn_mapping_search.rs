//! Map a real CNN layer (ResNet Conv_4 from Table 1) onto the paper's
//! 256-PE accelerator with Mind Mappings, and inspect the chosen mapping.
//!
//! ```bash
//! cargo run --release --example cnn_mapping_search
//! ```
//!
//! This is the workload the paper's introduction motivates: a compiler
//! targeting a flexible DNN accelerator needs a good tiling / loop order /
//! parallelism / buffer split for each layer of the network, and the map
//! space (~10^25 points for this layer) is far too large to search naively.

use mind_mappings::prelude::*;
use mind_mappings::workloads::cnn::CnnFamily;
use mm_mapspace::mapping::Level;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let arch = evaluated_accelerator();
    println!("accelerator: {arch}");

    // Phase 1: one surrogate for the whole CNN-layer family. The sample
    // count here is laptop-scale; raise it (and the epochs) for better
    // mappings, as in the paper's 10 M-sample configuration.
    println!("training the CNN-Layer surrogate (this takes a minute)…");
    let phase1 = Phase1Config {
        num_samples: 8_000,
        epochs: 25,
        hidden_layers: vec![64, 256, 128, 64],
        ..Phase1Config::default_experiment()
    };
    let (mm, _) = MindMappings::train(arch.clone(), &CnnFamily::default(), &phase1, &mut rng)
        .expect("surrogate training");

    // Phase 2: map ResNet Conv_4.
    let layer = table1::by_name("ResNet Conv_4")
        .expect("table 1 problem")
        .problem;
    let space = mm.map_space(&layer);
    println!(
        "target layer: {layer} (map space ≈ 10^{:.0} mappings)",
        space.log10_size_estimate()
    );
    let trace = mm.search(&layer, 2_000, &mut rng);
    let best = trace.best_mapping.clone().expect("mapping found");

    let model = CostModel::new(arch, layer.clone());
    let cost = model.evaluate(&best);
    println!(
        "\nbest mapping found (EDP {:.3e} J·s, {:.1}x above the algorithmic minimum):",
        cost.edp,
        cost.edp / model.lower_bound().edp
    );
    println!("  utilization: {:.1}%", cost.utilization * 100.0);
    println!("  cycles: {:.3e}", cost.cycles);
    println!("  energy: {:.3e} pJ", cost.total_energy_pj);

    println!("\nmapping details:");
    for d in layer.dims() {
        println!(
            "  {:<2}  size {:>4}  L1 tile {:>4}  L2 tile {:>4}  spatial x{}",
            layer.dim_names[d.index()],
            layer.dim_size(d),
            best.l1_tile(d),
            best.l2_tile(d),
            best.parallelism(d),
        );
    }
    for level in [Level::L1, Level::L2] {
        let order: Vec<&str> = best
            .order(level)
            .iter()
            .map(|&i| layer.dim_names[i].as_str())
            .collect();
        println!("  {level} loop order (outer→inner): {}", order.join(" → "));
    }
    let allocs: Vec<String> = layer
        .tensors
        .iter()
        .enumerate()
        .map(|(t, spec)| {
            format!(
                "{}={:.0}%",
                spec.name,
                best.alloc_fraction(Level::L2, t) * 100.0
            )
        })
        .collect();
    println!("  L2 buffer allocation: {}", allocs.join(", "));
}
