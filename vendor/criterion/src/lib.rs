//! Offline stand-in for the subset of `criterion` used by this workspace.
//!
//! Provides [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is deliberately simple: an adaptive
//! warm-up sizes the per-sample iteration count, then `sample_size` samples
//! are timed and min / mean / max ns-per-iteration are printed in a
//! criterion-like format.
//!
//! Environment knobs: `MM_BENCH_SAMPLE_SIZE` caps samples per benchmark and
//! `MM_BENCH_TARGET_MS` the per-benchmark time budget (useful in CI smoke
//! runs).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; the stand-in re-runs setup per
/// iteration regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Setup re-run for every iteration.
    PerIteration,
}

/// One measured sample: total duration of `iters` iterations.
#[derive(Debug, Clone, Copy)]
struct Sample {
    iters: u64,
    elapsed: Duration,
}

/// The per-benchmark measurement driver handed to `bench_function` closures.
pub struct Bencher {
    sample_size: usize,
    target: Duration,
    samples: Vec<Sample>,
}

impl Bencher {
    fn new(sample_size: usize, target: Duration) -> Self {
        Bencher {
            sample_size,
            target,
            samples: Vec::new(),
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: estimate the cost of one iteration.
        let mut one = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..one {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed > Duration::from_millis(1) || one >= 1 << 20 {
                break elapsed.as_secs_f64() / one as f64;
            }
            one *= 4;
        };
        let per_sample = self.target.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(Sample {
                iters,
                elapsed: start.elapsed(),
            });
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let deadline = Instant::now() + self.target;
        let max_iters = 10_000u64.max(self.sample_size as u64);
        while Instant::now() < deadline && iters < max_iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.samples.push(Sample {
            iters: iters.max(1),
            elapsed: measured,
        });
    }

    fn report(&self, id: &str) {
        let (mut min, mut max) = (f64::INFINITY, 0.0f64);
        let mut total_ns = 0.0;
        let mut total_iters = 0u64;
        for s in &self.samples {
            let ns = s.elapsed.as_nanos() as f64 / s.iters as f64;
            min = min.min(ns);
            max = max.max(ns);
            total_ns += s.elapsed.as_nanos() as f64;
            total_iters += s.iters;
        }
        if total_iters == 0 {
            println!("{id:<40} time: [no samples]");
            return;
        }
        let mean = total_ns / total_iters as f64;
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size = env_usize("MM_BENCH_SAMPLE_SIZE").unwrap_or(20);
        let target_ms = env_usize("MM_BENCH_TARGET_MS").unwrap_or(500) as u64;
        Criterion {
            sample_size,
            target: Duration::from_millis(target_ms),
        }
    }
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size, self.target);
        f(&mut b);
        b.report(&id);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named group sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.sample_size)
            .max(1);
        let mut b = Bencher::new(sample_size, self.criterion.target);
        f(&mut b);
        b.report(&id);
        self
    }

    /// Finish the group (reporting is per-benchmark; nothing further to do).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` from group entry points.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("MM_BENCH_SAMPLE_SIZE", "3");
        std::env::set_var("MM_BENCH_TARGET_MS", "20");
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke/iter", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs > 0);
        let mut batched = 0u64;
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(|| 7u64, |v| batched += v, BatchSize::SmallInput)
        });
        assert!(batched > 0);
        std::env::remove_var("MM_BENCH_SAMPLE_SIZE");
        std::env::remove_var("MM_BENCH_TARGET_MS");
    }

    #[test]
    fn groups_apply_sample_size() {
        std::env::set_var("MM_BENCH_TARGET_MS", "10");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut count = 0u64;
        group.bench_function("x", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count > 0);
        std::env::remove_var("MM_BENCH_TARGET_MS");
    }

    #[test]
    fn ns_formatting() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(2_000_000_000.0).ends_with('s'));
    }
}
