//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! Nothing in the dependency graph actually serializes (there is no format
//! crate such as `serde_json`); types only *derive* `Serialize` /
//! `Deserialize`. This stand-in therefore provides the two trait names as
//! markers with blanket implementations — so `T: Serialize` bounds stay
//! satisfiable — and re-exports no-op derive macros under the same names,
//! exactly mirroring how upstream `serde` re-exports `serde_derive`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Namespace stand-in for `serde::de`.
pub mod de {
    pub use crate::DeserializeOwned;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Plain {
        a: u32,
        b: Vec<f64>,
    }

    #[derive(Serialize, Deserialize)]
    enum WithVariants {
        A,
        B(u8),
        C { x: f32 },
    }

    fn requires_serialize<T: crate::Serialize>(_t: &T) {}

    #[test]
    fn derives_compile_and_bounds_hold() {
        let p = Plain { a: 1, b: vec![2.0] };
        requires_serialize(&p);
        for v in [
            WithVariants::A,
            WithVariants::B(3),
            WithVariants::C { x: 0.5 },
        ] {
            requires_serialize(&v);
            if let WithVariants::B(n) = v {
                assert_eq!(n, 3);
            }
            if let WithVariants::C { x } = v {
                assert!(x > 0.0);
            }
        }
        assert_eq!(p, Plain { a: 1, b: vec![2.0] });
    }
}
