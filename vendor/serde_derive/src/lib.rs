//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on many types but never
//! serializes anything (there is no `serde_json` or other format crate in the
//! dependency graph), so the derive macros expand to nothing. The companion
//! `serde` stand-in blanket-implements the marker traits, keeping any
//! `T: Serialize` bounds satisfiable.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]` and expand to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]` and expand to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
