//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace vendors a minimal, dependency-free implementation of the
//! `rand` surface it actually consumes: [`RngCore`], [`Rng`] (`gen_range`,
//! `gen_bool`), [`SeedableRng`] (`seed_from_u64`, `from_entropy`),
//! [`rngs::StdRng`], [`seq::SliceRandom`] (`shuffle`, `choose`), and
//! [`thread_rng`].
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64 — not the
//! ChaCha12 core of upstream `rand`, so seeded streams differ from upstream,
//! but the statistical quality is more than adequate for the stochastic
//! searches and property tests in this repository, and all determinism
//! guarantees (same seed ⇒ same stream) hold.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A deterministic generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` seed (expanded with SplitMix64, as upstream does).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Build from weak system entropy (wall clock + address-space noise).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub(crate) fn entropy_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    // Mix in an address so simultaneous calls in one process diverge.
    let marker = &nanos as *const u64 as u64;
    let mut s = nanos ^ marker.rotate_left(32);
    splitmix64(&mut s)
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Sample a single value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over ranges.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty inclusive range");
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                }
                // Width as u128 so full-domain u64 ranges cannot overflow.
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                if span == 0 || span > u64::MAX as u128 {
                    // Full 64-bit domain: any output is in range.
                    return (lo as i128).wrapping_add(rng.next_u64() as i128) as $t;
                }
                // Lemire-style scaled multiply; bias is < span / 2^64.
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "gen_range: empty float range");
                lo + (hi - lo) * $unit(rng)
            }
        }
    )*};
}

pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub(crate) fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl_uniform_float!(f32 => unit_f32, f64 => unit_f64);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A fresh weakly-seeded generator (upstream's `thread_rng` hands out a
/// thread-local handle; a fresh instance is equivalent for our callers).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let v: usize = rng.gen_range(0..3);
            assert!(v < 3);
            let v: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&v));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let f: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_full_u64_domain() {
        let mut rng = StdRng::seed_from_u64(7);
        // Must not panic or loop: the proptest strategies use 0..u64::MAX.
        for _ in 0..100 {
            let _: u64 = rng.gen_range(0u64..u64::MAX);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let ratio = hits as f64 / n as f64;
        assert!((ratio - 0.25).abs() < 0.01, "p=0.25 measured {ratio}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_fills_every_byte() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn thread_rng_instances_diverge() {
        let mut a = thread_rng();
        let mut b = thread_rng();
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
