//! Generator implementations: the seedable [`StdRng`] and the weakly-seeded
//! [`ThreadRng`].

use crate::{entropy_seed, splitmix64, RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Upstream `rand`'s `StdRng` is ChaCha12; the seeded output streams differ,
/// but every property relied upon here — determinism, cheap cloning,
/// statistical quality for stochastic search — is preserved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_state(mut seed_stream: u64) -> Self {
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut seed_stream);
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (w, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *w = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // Never allow the all-zero state (a xoshiro fixed point).
        if s.iter().all(|&w| w == 0) {
            return StdRng::from_state(0x6A09_E667_F3BC_C909);
        }
        StdRng { s }
    }
}

/// A fresh weakly-seeded generator, returned by [`crate::thread_rng`].
#[derive(Debug, Clone)]
pub struct ThreadRng {
    inner: StdRng,
}

impl ThreadRng {
    pub(crate) fn new() -> Self {
        ThreadRng {
            inner: StdRng::from_state(entropy_seed()),
        }
    }
}

impl Default for ThreadRng {
    fn default() -> Self {
        Self::new()
    }
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_rescued() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn from_seed_uses_all_bytes() {
        let mut a = [1u8; 32];
        let b = a;
        a[31] = 2;
        let mut ra = StdRng::from_seed(a);
        let mut rb = StdRng::from_seed(b);
        assert_ne!(
            (0..4).map(|_| ra.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| rb.next_u64()).collect::<Vec<_>>()
        );
    }
}
