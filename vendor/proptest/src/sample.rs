//! `prop::sample` strategies: uniform selection from a fixed set.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy choosing uniformly from a fixed list of values.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

/// Choose uniformly from `options`.
///
/// # Panics
///
/// Panics if `options` is empty (matching upstream behaviour).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "prop::sample::select of empty list");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_covers_options() {
        let s = select(vec![1u8, 2, 3]);
        let mut rng = TestRng::for_seed(9);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(s.sample(&mut rng) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "empty list")]
    fn empty_select_panics() {
        let _ = select(Vec::<u8>::new());
    }
}
