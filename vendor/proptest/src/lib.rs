//! Offline stand-in for the subset of `proptest` used by this workspace.
//!
//! Implements the `proptest!` macro, range / select / collection strategies,
//! `prop_assert!` / `prop_assert_eq!`, and `ProptestConfig::with_cases`.
//! Inputs are sampled deterministically (seeded per test by case index);
//! there is no shrinking — a failing case reports its index and seed so it
//! can be replayed by re-running the test.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::{Config, TestRng};

/// Alias used by `#![proptest_config(...)]` blocks.
pub type ProptestConfig = Config;

/// A property-test failure produced by `prop_assert!` and friends, or a
/// discarded case produced by `prop_assume!`.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
    rejected: bool,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejected: false,
        }
    }

    /// Build a rejection (`prop_assume!` miss): the case is skipped, not
    /// failed.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejected: true,
        }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Whether this is a discard rather than a failure.
    pub fn is_rejection(&self) -> bool {
        self.rejected
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Everything a `use proptest::prelude::*;` consumer expects in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Assert inside a `proptest!` body, failing the current case (not the whole
/// process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Discard the current case unless `cond` holds (no failure is recorded).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        $crate::prop_assume!($cond, "assumption failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Define property tests: each `fn` runs `config.cases` times over freshly
/// sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $cfg; $($rest)*);
    };
    (@with_config $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::Config = $cfg;
            for case in 0..config.cases {
                let seed = $crate::test_runner::case_seed(stringify!($name), case);
                let mut proptest_rng = $crate::TestRng::for_seed(seed);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    if e.is_rejection() {
                        continue; // prop_assume! discarded this case
                    }
                    panic!(
                        "proptest case {}/{} (seed {:#x}) failed: {}",
                        case + 1,
                        config.cases,
                        seed,
                        e.message()
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config $crate::Config::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 0u64..u64::MAX,
            b in 2usize..8,
            c in -1.5f32..1.5,
            d in 1u64..=16,
        ) {
            prop_assert!(a < u64::MAX);
            prop_assert!((2..8).contains(&b));
            prop_assert!((-1.5..1.5).contains(&c));
            prop_assert!((1..=16).contains(&d));
        }

        #[test]
        fn select_and_vec_strategies(
            pick in prop::sample::select(vec![10u64, 20, 30]),
            v in prop::collection::vec(-1e3f32..1e3, 2..40),
            fixed in prop::collection::vec(0u32..5, 3),
        ) {
            prop_assert!([10u64, 20, 30].contains(&pick));
            prop_assert!((2..40).contains(&v.len()));
            prop_assert_eq!(fixed.len(), 3);
            prop_assert!(v.iter().all(|x| (-1e3..1e3).contains(x)));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_case_and_seed() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
