//! The [`Strategy`] trait and range strategies.

use std::ops::{Range, RangeInclusive};

use rand::{Rng, SampleUniform};

use crate::test_runner::TestRng;

/// A way of producing random values of one type.
///
/// Unlike upstream proptest there is no value tree or shrinking: a strategy
/// is simply a sampler.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform + Copy> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy producing one constant value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategies_sample_in_bounds() {
        let mut rng = TestRng::for_seed(1);
        for _ in 0..1000 {
            let v = (3u64..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1usize..=4).sample(&mut rng);
            assert!((1..=4).contains(&w));
        }
        assert_eq!(Just(7u8).sample(&mut rng), 7);
    }
}
