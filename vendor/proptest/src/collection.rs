//! `prop::collection` strategies: random-length vectors.

use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for [`vec()`]: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Vector of values from `element` with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_fixed_and_ranged_sizes() {
        let mut rng = TestRng::for_seed(4);
        let fixed = vec(0u8..10, 5).sample(&mut rng);
        assert_eq!(fixed.len(), 5);
        for _ in 0..100 {
            let v = vec(0u8..10, 2..6).sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn nested_vec_strategy() {
        let mut rng = TestRng::for_seed(5);
        let grid = vec(vec(-1.0f32..1.0, 3), 2..4).sample(&mut rng);
        assert!((2..4).contains(&grid.len()));
        assert!(grid.iter().all(|row| row.len() == 3));
    }
}
