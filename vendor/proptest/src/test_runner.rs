//! Runner configuration and the deterministic per-case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Property-test configuration (`ProptestConfig` in upstream terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` sampled inputs.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }

    /// A configuration running `PROPTEST_CASES` sampled inputs when the
    /// environment variable is set (CI pins it so proptest runtime is
    /// deterministic across runs), falling back to `default` cases.
    pub fn with_cases_env(default: u32) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default);
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Config { cases }
    }
}

/// Deterministic seed for one case of one named test.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The RNG handed to strategies while sampling one case.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Build the RNG for a case seed.
    pub fn for_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_differ_by_name_and_case() {
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
        assert_eq!(case_seed("a", 3), case_seed("a", 3));
    }
}
