//! # mind-mappings
//!
//! Umbrella crate for the Mind Mappings reproduction (ASPLOS 2021): a
//! gradient-based algorithm-accelerator mapping space search built on a
//! differentiable surrogate of an analytical accelerator cost model.
//!
//! This crate simply re-exports the workspace members so that the examples
//! and integration tests (and downstream users who want a single dependency)
//! can reach every component through one crate:
//!
//! * [`mapspace`] — problems, mappings, map spaces, encoding, projection;
//! * [`accel`] — the Timeloop-style analytical cost model;
//! * [`nn`] — the MLP/backprop substrate;
//! * [`search`] — SA, GA, RL, and random-search baselines, plus the
//!   stepwise `ProposalSearch` protocol;
//! * [`core`] — the Mind Mappings framework (surrogate + gradient search);
//! * [`mapper`] — the parallel mapper-orchestration engine (evaluation
//!   pool, multi-threaded sharded search, termination policies);
//! * [`serve`] — the multi-tenant whole-network mapping service (request
//!   admission, fair-share scheduling over one shared eval pool, result
//!   cache, batched surrogate evaluation);
//! * [`workloads`] — CNN-Layer, MTTKRP, 1D-Conv, the Table 1 problems, and
//!   whole-network workloads.
//!
//! See the repository README for a quickstart and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

pub use mm_accel as accel;
pub use mm_core as core;
pub use mm_mapper as mapper;
pub use mm_mapspace as mapspace;
pub use mm_nn as nn;
pub use mm_search as search;
pub use mm_serve as serve;
pub use mm_workloads as workloads;

/// Convenience prelude bringing the most commonly used types into scope.
pub mod prelude {
    pub use mm_accel::{
        Architecture, BatchCosts, CostBreakdown, CostModel, CostSummary, EvalScratch,
    };
    pub use mm_core::{
        CostModelObjective, GradientProposer, MindMappings, Phase1Config, Phase2Config, Surrogate,
    };
    pub use mm_mapper::{
        CostEvaluator, EvalPool, Evaluation, Mapper, MapperConfig, MapperReport, MapperSchedule,
        ModelEvaluator, OptMetric, TerminationPolicy,
    };
    pub use mm_mapspace::{
        Encoding, MapSpace, MapSpaceView, Mapping, MappingConstraints, ProblemSpec, ShardedMapSpace,
    };
    pub use mm_search::{
        Budget, GeneticAlgorithm, Objective, ProposalSearch, RandomSearch, SearchTrace, Searcher,
        SimulatedAnnealing, SyncAction, SyncPolicy,
    };
    #[allow(deprecated)]
    pub use mm_serve::ServeConfig;
    pub use mm_serve::{
        AdmissionError, MappingService, NetworkReport, RequestConfig, RequestError, RequestHandle,
        ServiceConfig, ServiceProfile, SurrogateEvaluator,
    };
    pub use mm_workloads::{
        cnn::CnnLayer, evaluated_accelerator, mttkrp::MttkrpShape, table1, table1_network, Network,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_compile() {
        use crate::prelude::*;
        let arch = Architecture::example();
        assert!(arch.num_pes > 0);
        assert_eq!(table1::all_problems().len(), 8);
        // The parallel-mapper surface is reachable through the prelude too.
        let policy = TerminationPolicy::search_size(100).with_victory_condition(10);
        assert!(policy.is_bounded());
        assert_eq!(OptMetric::parse("edp"), Some(OptMetric::Edp));
        assert_eq!(MapperConfig::default().threads, 1);
        // The serving surface is reachable through the prelude too.
        assert!(RequestConfig::default().use_cache);
        assert!(ServiceConfig::default().queue_depth >= 1);
        assert_eq!(table1_network().len(), 8);
    }
}
